// Package cli holds the schema-clause and CSV parsing shared by the
// command-line tools and the HTTP server, split out of cmd/privelet so
// it can be tested directly. Schema clauses (Name:ordinal:SIZE,
// Name:nominal:flat:N, Name:nominal:3level:GxL) are the textual form of
// the paper's attribute model (§II-A: ordinal and hierarchy-bearing
// nominal attributes).
package cli

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
)

// ParseSchema parses a comma-separated clause list into a schema. Clause
// grammar (one per attribute, in column order):
//
//	Name:ordinal:SIZE
//	Name:nominal:flat:LEAVES
//	Name:nominal:3level:GROUPSxLEAVES
func ParseSchema(spec string) (*dataset.Schema, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cli: empty schema spec")
	}
	var attrs []dataset.Attribute
	for _, clause := range strings.Split(spec, ",") {
		attr, err := parseClause(strings.TrimSpace(clause))
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, attr)
	}
	return dataset.NewSchema(attrs...)
}

func parseClause(clause string) (dataset.Attribute, error) {
	parts := strings.Split(clause, ":")
	if len(parts) < 3 {
		return dataset.Attribute{}, fmt.Errorf("cli: clause %q: want name:kind:shape", clause)
	}
	name, kind := parts[0], parts[1]
	if name == "" {
		return dataset.Attribute{}, fmt.Errorf("cli: clause %q: empty attribute name", clause)
	}
	switch kind {
	case "ordinal":
		size, err := strconv.Atoi(parts[2])
		if err != nil {
			return dataset.Attribute{}, fmt.Errorf("cli: clause %q: bad size: %w", clause, err)
		}
		return dataset.OrdinalAttr(name, size), nil
	case "nominal":
		if len(parts) < 4 {
			return dataset.Attribute{}, fmt.Errorf("cli: clause %q: want name:nominal:flat:N or name:nominal:3level:GxL", clause)
		}
		switch parts[2] {
		case "flat":
			n, err := strconv.Atoi(parts[3])
			if err != nil {
				return dataset.Attribute{}, fmt.Errorf("cli: clause %q: bad leaf count: %w", clause, err)
			}
			h, err := hierarchy.Flat(n)
			if err != nil {
				return dataset.Attribute{}, fmt.Errorf("cli: clause %q: %w", clause, err)
			}
			return dataset.NominalAttr(name, h), nil
		case "3level":
			var g, l int
			if _, err := fmt.Sscanf(parts[3], "%dx%d", &g, &l); err != nil {
				return dataset.Attribute{}, fmt.Errorf("cli: clause %q: want GROUPSxLEAVES: %w", clause, err)
			}
			h, err := hierarchy.ThreeLevel(g, l)
			if err != nil {
				return dataset.Attribute{}, fmt.Errorf("cli: clause %q: %w", clause, err)
			}
			return dataset.NominalAttr(name, h), nil
		default:
			return dataset.Attribute{}, fmt.Errorf("cli: clause %q: unknown hierarchy shape %q", clause, parts[2])
		}
	default:
		return dataset.Attribute{}, fmt.Errorf("cli: clause %q: unknown kind %q", clause, kind)
	}
}

// ReadRows streams a headerless integer CSV whose columns match the
// schema's attributes in order, handing each parsed row to sink as it is
// read. Blank lines are skipped; values are 0-based domain indices. The
// row slice passed to sink is reused between calls — sinks that retain
// rows must copy (the intended sinks, dataset.Table.Append and
// privelet's Publisher.Add, both consume the values immediately).
//
// This is the streaming ingest chokepoint: with a frequency-folding sink
// the whole pipe from CSV bytes to matrix counts holds one row in memory
// at a time, so n ≫ RAM tables publish fine.
func ReadRows(schema *dataset.Schema, r io.Reader, sink func(vals ...int) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	vals := make([]int, schema.NumAttrs())
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != schema.NumAttrs() {
			return fmt.Errorf("cli: line %d: %d fields, want %d", line, len(fields), schema.NumAttrs())
		}
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("cli: line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		if err := sink(vals...); err != nil {
			return fmt.Errorf("cli: line %d: %w", line, err)
		}
	}
	return sc.Err()
}

// ReadTable loads a headerless integer CSV into a buffered table — the
// legacy ingest path, retained for callers that need the tuples
// themselves. Publishing pipelines should prefer ReadRows with a
// streaming sink, which never materializes the n tuples.
func ReadTable(schema *dataset.Schema, r io.Reader) (*dataset.Table, error) {
	table := dataset.NewTable(schema)
	if err := ReadRows(schema, r, table.Append); err != nil {
		return nil, err
	}
	return table, nil
}

// WriteTableCSV emits the table as a headerless integer CSV, the inverse
// of ReadTable.
func WriteTableCSV(w io.Writer, t *dataset.Table) error {
	bw := bufio.NewWriter(w)
	d := t.Schema().NumAttrs()
	row := make([]int, d)
	for i := 0; i < t.Len(); i++ {
		t.Row(i, row)
		for j, v := range row {
			if j > 0 {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(bw, v); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SplitNonEmpty splits a comma-separated flag value, dropping empties.
func SplitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
