package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/matrix"
)

// publishAt publishes the same table at a given parallelism.
func publishAt(t *testing.T, tbl *dataset.Table, sa []string, par int) *Result {
	t.Helper()
	res, err := Publish(context.Background(), tbl, Options{Epsilon: 1, SA: sa, Seed: 99, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPublishParallelismInvariance is the engine's central property: for
// a fixed seed, the released matrix is bit-identical at parallelism 1, 4,
// and GOMAXPROCS, across SA configurations covering plain Privelet (no
// sub-matrix fan-out), Privelet+ (many sub-matrices), and the Basic
// degenerate case.
func TestPublishParallelismInvariance(t *testing.T) {
	tbl := smallCensus(t, 2000, 3)
	saConfigs := [][]string{
		nil,                             // plain Privelet: 1 sub-matrix, vector-level fan-out
		{"Gender"},                      // 2 sub-matrices
		{"Age", "Gender"},               // 128 sub-matrices
		{"Age", "Gender", "Occupation"}, // SA-heavy: tiny rest transform
		{"Age", "Gender", "Occupation", "Income"}, // Basic mechanism
	}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, sa := range saConfigs {
		base := publishAt(t, tbl, sa, levels[0])
		for _, par := range levels[1:] {
			got := publishAt(t, tbl, sa, par)
			d, err := base.Noisy.MaxAbsDiff(got.Noisy)
			if err != nil {
				t.Fatal(err)
			}
			if d != 0 {
				t.Errorf("SA=%v: parallelism %d release differs from serial by %v", sa, par, d)
			}
			if got.Lambda != base.Lambda || got.Rho != base.Rho ||
				got.VarianceBound != base.VarianceBound || got.SubMatrices != base.SubMatrices {
				t.Errorf("SA=%v: accounting differs across parallelism levels", sa)
			}
		}
	}
}

// TestPublishParallelismExceedsWork checks the degenerate pool shapes:
// more workers than sub-matrices, and more workers than vectors.
func TestPublishParallelismExceedsWork(t *testing.T) {
	tbl := smallCensus(t, 500, 4)
	base := publishAt(t, tbl, []string{"Age", "Gender"}, 1)
	wild := publishAt(t, tbl, []string{"Age", "Gender"}, 1000)
	if d, _ := base.Noisy.MaxAbsDiff(wild.Noisy); d != 0 {
		t.Errorf("parallelism 1000 release differs from serial by %v", d)
	}
}

// TestPublishInputUnmodified: the engine reads the input matrix from many
// goroutines but must never write it.
func TestPublishInputUnmodified(t *testing.T) {
	tbl := smallCensus(t, 1000, 5)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clone()
	if _, err := PublishMatrix(context.Background(), m, tbl.Schema(), Options{Epsilon: 1, SA: []string{"Age"}, Seed: 1, Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	if d, _ := m.MaxAbsDiff(before); d != 0 {
		t.Fatalf("input matrix modified by publish (max diff %v)", d)
	}
}

// TestPublishDefaultParallelism: Parallelism ≤ 0 must behave like
// GOMAXPROCS, i.e. still produce the seed-determined release.
func TestPublishDefaultParallelism(t *testing.T) {
	tbl := smallCensus(t, 500, 6)
	a := publishAt(t, tbl, []string{"Gender"}, 0)
	b := publishAt(t, tbl, []string{"Gender"}, runtime.GOMAXPROCS(0))
	if d, _ := a.Noisy.MaxAbsDiff(b.Noisy); d != 0 {
		t.Errorf("default parallelism release differs by %v", d)
	}
}

// TestPublishCancelMidTransformNoSA is the PR-4 regression for the
// cancellation-granularity fix: an SA = ∅ publish is ONE sub-matrix, so
// before ctx reached the ApplyAlong chunk loops the engine only observed
// cancellation between transform steps — effectively at the start. With
// the fix, cancelling while the (multi-second-sized) transform is in
// flight aborts mid-pass: the publish returns ctx's error promptly, no
// Result is handed out, and no worker goroutines linger.
func TestPublishCancelMidTransformNoSA(t *testing.T) {
	// 2048×512 = 1M entries: each wavelet step sweeps ~16 chunk-granule
	// cancellation points, so a cancel during the pass is observed well
	// before the pass ends.
	schema := dataset.MustSchema(dataset.OrdinalAttr("A", 2048), dataset.OrdinalAttr("B", 512))
	m, err := matrix.New(schema.Dims()...)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var pubErr error
	go func() {
		defer close(done)
		res, pubErr = PublishMatrix(ctx, m, schema, Options{Epsilon: 1, Seed: 11, Parallelism: 2})
	}()
	time.Sleep(500 * time.Microsecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled SA=∅ publish did not return")
	}
	if pubErr != nil {
		if !errors.Is(pubErr, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", pubErr)
		}
		if res != nil {
			t.Fatal("cancelled publish returned a partial Result")
		}
	}
	// Whether the publish lost or won the race, its workers must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPublishCancelledNoSADeterministic is the race-free form: a publish
// whose context dies on the first wavelet kernel call must abort inside
// the transform (the Figure-5 pipeline never reaches noise injection),
// proven by a context that a timer cannot miss — it is cancelled before
// the call, and the SA = ∅ path must return its error without producing
// a release.
func TestPublishCancelledNoSADeterministic(t *testing.T) {
	schema := dataset.MustSchema(dataset.OrdinalAttr("A", 256), dataset.OrdinalAttr("B", 64))
	m, err := matrix.New(schema.Dims()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PublishMatrix(ctx, m, schema, Options{Epsilon: 1, Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled publish returned a Result")
	}
}
