package core

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/dataset"
)

// publishAt publishes the same table at a given parallelism.
func publishAt(t *testing.T, tbl *dataset.Table, sa []string, par int) *Result {
	t.Helper()
	res, err := Publish(context.Background(), tbl, Options{Epsilon: 1, SA: sa, Seed: 99, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPublishParallelismInvariance is the engine's central property: for
// a fixed seed, the released matrix is bit-identical at parallelism 1, 4,
// and GOMAXPROCS, across SA configurations covering plain Privelet (no
// sub-matrix fan-out), Privelet+ (many sub-matrices), and the Basic
// degenerate case.
func TestPublishParallelismInvariance(t *testing.T) {
	tbl := smallCensus(t, 2000, 3)
	saConfigs := [][]string{
		nil,                             // plain Privelet: 1 sub-matrix, vector-level fan-out
		{"Gender"},                      // 2 sub-matrices
		{"Age", "Gender"},               // 128 sub-matrices
		{"Age", "Gender", "Occupation"}, // SA-heavy: tiny rest transform
		{"Age", "Gender", "Occupation", "Income"}, // Basic mechanism
	}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, sa := range saConfigs {
		base := publishAt(t, tbl, sa, levels[0])
		for _, par := range levels[1:] {
			got := publishAt(t, tbl, sa, par)
			d, err := base.Noisy.MaxAbsDiff(got.Noisy)
			if err != nil {
				t.Fatal(err)
			}
			if d != 0 {
				t.Errorf("SA=%v: parallelism %d release differs from serial by %v", sa, par, d)
			}
			if got.Lambda != base.Lambda || got.Rho != base.Rho ||
				got.VarianceBound != base.VarianceBound || got.SubMatrices != base.SubMatrices {
				t.Errorf("SA=%v: accounting differs across parallelism levels", sa)
			}
		}
	}
}

// TestPublishParallelismExceedsWork checks the degenerate pool shapes:
// more workers than sub-matrices, and more workers than vectors.
func TestPublishParallelismExceedsWork(t *testing.T) {
	tbl := smallCensus(t, 500, 4)
	base := publishAt(t, tbl, []string{"Age", "Gender"}, 1)
	wild := publishAt(t, tbl, []string{"Age", "Gender"}, 1000)
	if d, _ := base.Noisy.MaxAbsDiff(wild.Noisy); d != 0 {
		t.Errorf("parallelism 1000 release differs from serial by %v", d)
	}
}

// TestPublishInputUnmodified: the engine reads the input matrix from many
// goroutines but must never write it.
func TestPublishInputUnmodified(t *testing.T) {
	tbl := smallCensus(t, 1000, 5)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clone()
	if _, err := PublishMatrix(context.Background(), m, tbl.Schema(), Options{Epsilon: 1, SA: []string{"Age"}, Seed: 1, Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	if d, _ := m.MaxAbsDiff(before); d != 0 {
		t.Fatalf("input matrix modified by publish (max diff %v)", d)
	}
}

// TestPublishDefaultParallelism: Parallelism ≤ 0 must behave like
// GOMAXPROCS, i.e. still produce the seed-determined release.
func TestPublishDefaultParallelism(t *testing.T) {
	tbl := smallCensus(t, 500, 6)
	a := publishAt(t, tbl, []string{"Gender"}, 0)
	b := publishAt(t, tbl, []string{"Gender"}, runtime.GOMAXPROCS(0))
	if d, _ := a.Noisy.MaxAbsDiff(b.Noisy); d != 0 {
		t.Errorf("default parallelism release differs by %v", d)
	}
}
