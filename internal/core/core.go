// Package core implements the paper's primary contribution: the Privelet
// and Privelet+ publishing mechanisms (§III, §VI-B, Figure 5).
//
// Privelet+ takes a table T, a privacy budget ε, and a subset SA of the
// attributes. It maps T to its frequency matrix M, splits M into
// sub-matrices along the SA dimensions, applies the HN wavelet transform
// to each sub-matrix, injects per-coefficient Laplace noise with magnitude
// λ/W_HN(c), inverts the transform (with mean subtraction along nominal
// dimensions), and reassembles the noisy frequency matrix M*.
//
// Special cases fall out of the same code path:
//
//   - SA = ∅ is plain Privelet (one sub-matrix: all of M);
//   - SA = all attributes is exactly Dwork et al.'s Basic mechanism (every
//     sub-matrix is a single cell, the "transform" is the identity with
//     weight 1, and λ = 2/ε).
//
// Privacy accounting: replacing one tuple changes two entries of M by one
// each (sensitivity 2 in the paper's Definition 2 sense). With the HN
// transform's generalized sensitivity ρ = ∏_{A∉SA} P(A) per unit entry
// change, noise magnitude λ/W_HN(c) yields (2ρ/λ)-differential privacy
// (Lemma 1 + Theorem 2); Publish therefore sets λ = 2ρ/ε.
package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/transform"
)

// Options configures a Publish call.
type Options struct {
	// Epsilon is the ε-differential-privacy budget; must be positive.
	Epsilon float64
	// SA lists attribute names excluded from the wavelet transform
	// (Privelet+'s small-domain attributes). Empty means plain Privelet;
	// all attributes means the Basic mechanism.
	SA []string
	// Seed drives the Laplace noise stream; equal seeds give
	// bit-identical releases (for experiments — production releases
	// should draw seeds from a secure source).
	Seed uint64
}

// Result is a published noisy frequency matrix together with its privacy
// accounting.
type Result struct {
	// Noisy is M*, shaped exactly like the input frequency matrix.
	Noisy *matrix.Matrix
	// Lambda is the base noise parameter λ = 2ρ/ε.
	Lambda float64
	// Rho is the generalized sensitivity of the transform used
	// (∏_{A∉SA} P(A); 1 when SA covers every attribute).
	Rho float64
	// Epsilon echoes the requested budget.
	Epsilon float64
	// VarianceBound is Corollary 1's worst-case noise variance for any
	// range-count query answered from Noisy.
	VarianceBound float64
	// SubMatrices is the number of sub-matrices processed (∏_{A∈SA}|A|).
	SubMatrices int
}

// Publish runs Privelet+ on a table: it materializes the frequency matrix
// and delegates to PublishMatrix. O(n + m) as the paper requires.
func Publish(t *dataset.Table, opts Options) (*Result, error) {
	m, err := t.FrequencyMatrix()
	if err != nil {
		return nil, err
	}
	return PublishMatrix(m, t.Schema(), opts)
}

// PublishMatrix runs Privelet+ directly on a frequency matrix. The input
// matrix is not modified.
func PublishMatrix(m *matrix.Matrix, schema *dataset.Schema, opts Options) (*Result, error) {
	if opts.Epsilon <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", opts.Epsilon)
	}
	saIdx, restIdx, err := partition(schema, opts.SA)
	if err != nil {
		return nil, err
	}
	got, want := m.Dims(), schema.Dims()
	if len(got) != len(want) {
		return nil, fmt.Errorf("core: matrix dimensionality %d, schema has %d attributes", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, fmt.Errorf("core: matrix shape %v does not match schema %v", got, want)
		}
	}
	src := rng.New(opts.Seed)

	// SA covers everything: Basic mechanism (Figure 5 degenerates to
	// per-entry noise with sensitivity 2).
	if len(restIdx) == 0 {
		lambda := 2 / opts.Epsilon
		noisy := m.Clone()
		if err := privacy.InjectLaplaceUniform(noisy, lambda, src); err != nil {
			return nil, err
		}
		return &Result{
			Noisy:         noisy,
			Lambda:        lambda,
			Rho:           1,
			Epsilon:       opts.Epsilon,
			VarianceBound: privacy.BasicVarianceBound(opts.Epsilon, schema.DomainSize()),
			SubMatrices:   m.Len(),
		}, nil
	}

	// Build the HN transform over the non-SA dimensions.
	allSpecs := schema.Specs()
	restSpecs := make([]transform.Spec, len(restIdx))
	for i, ri := range restIdx {
		restSpecs[i] = allSpecs[ri]
	}
	hn, err := transform.New(restSpecs...)
	if err != nil {
		return nil, err
	}
	rho := hn.GeneralizedSensitivity()
	lambda := 2 * rho / opts.Epsilon
	weightVecs := make([][]float64, hn.NumDims())
	for i := range weightVecs {
		weightVecs[i] = hn.WeightVector(i)
	}

	noisy := m.Clone()
	subCount := 1
	for _, si := range saIdx {
		subCount *= schema.Attr(si).Size
	}

	// Enumerate SA coordinate combinations (odometer), processing one
	// sub-matrix per combination — Figure 5 steps 3–6.
	coords := make([]int, len(saIdx))
	for {
		sub, err := noisy.Sub(saIdx, coords)
		if err != nil {
			return nil, err
		}
		c, err := hn.Forward(sub)
		if err != nil {
			return nil, err
		}
		if err := privacy.InjectLaplace(c, weightVecs, lambda, src); err != nil {
			return nil, err
		}
		rec, err := hn.Inverse(c)
		if err != nil {
			return nil, err
		}
		if err := noisy.SetSub(saIdx, coords, rec); err != nil {
			return nil, err
		}
		if len(saIdx) == 0 {
			break // single sub-matrix: all of M
		}
		k := len(coords) - 1
		for ; k >= 0; k-- {
			coords[k]++
			if coords[k] < schema.Attr(saIdx[k]).Size {
				break
			}
			coords[k] = 0
		}
		if k < 0 {
			break
		}
	}

	saSizes := make([]int, len(saIdx))
	for i, si := range saIdx {
		saSizes[i] = schema.Attr(si).Size
	}
	bound, err := privacy.PriveletPlusVarianceBound(opts.Epsilon, saSizes, restSpecs)
	if err != nil {
		return nil, err
	}
	return &Result{
		Noisy:         noisy,
		Lambda:        lambda,
		Rho:           rho,
		Epsilon:       opts.Epsilon,
		VarianceBound: bound,
		SubMatrices:   subCount,
	}, nil
}

// partition resolves the SA names into sorted attribute indices and
// returns (SA indices, remaining indices).
func partition(schema *dataset.Schema, sa []string) (saIdx, restIdx []int, err error) {
	seen := make(map[int]bool, len(sa))
	for _, name := range sa {
		i, err := schema.Index(name)
		if err != nil {
			return nil, nil, err
		}
		if seen[i] {
			return nil, nil, fmt.Errorf("core: attribute %q listed twice in SA", name)
		}
		seen[i] = true
		saIdx = append(saIdx, i)
	}
	sort.Ints(saIdx)
	for i := 0; i < schema.NumAttrs(); i++ {
		if !seen[i] {
			restIdx = append(restIdx, i)
		}
	}
	return saIdx, restIdx, nil
}

// RecommendSA returns the attribute names Corollary 1 suggests placing in
// SA: those with |A| ≤ P(A)²·H(A), for which Dwork-style per-entry noise
// beats the wavelet bound (§VI-D; the paper picks SA = {Age, Gender} for
// the census data this way).
func RecommendSA(schema *dataset.Schema) ([]string, error) {
	var out []string
	for i := 0; i < schema.NumAttrs(); i++ {
		a := schema.Attr(i)
		spec := schema.Specs()[i]
		p, err := privacy.PSpec(spec)
		if err != nil {
			return nil, err
		}
		h, err := privacy.HSpec(spec)
		if err != nil {
			return nil, err
		}
		if float64(a.Size) <= p*p*h {
			out = append(out, a.Name)
		}
	}
	return out, nil
}
