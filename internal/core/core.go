// Package core implements the paper's primary contribution: the Privelet
// and Privelet+ publishing mechanisms (§III, §VI-B, Figure 5).
//
// Privelet+ takes a table T, a privacy budget ε, and a subset SA of the
// attributes. It maps T to its frequency matrix M, splits M into
// sub-matrices along the SA dimensions, applies the HN wavelet transform
// to each sub-matrix, injects per-coefficient Laplace noise with magnitude
// λ/W_HN(c), inverts the transform (with mean subtraction along nominal
// dimensions), and reassembles the noisy frequency matrix M*.
//
// Special cases fall out of the same code path:
//
//   - SA = ∅ is plain Privelet (one sub-matrix: all of M);
//   - SA = all attributes is exactly Dwork et al.'s Basic mechanism (every
//     sub-matrix is a single cell, the "transform" is the identity with
//     weight 1, and λ = 2/ε).
//
// Privacy accounting: replacing one tuple changes two entries of M by one
// each (sensitivity 2 in the paper's Definition 2 sense). With the HN
// transform's generalized sensitivity ρ = ∏_{A∉SA} P(A) per unit entry
// change, noise magnitude λ/W_HN(c) yields (2ρ/λ)-differential privacy
// (Lemma 1 + Theorem 2); Publish therefore sets λ = 2ρ/ε.
//
// Execution model. The Figure-5 sub-matrices are mutually independent, so
// PublishMatrix fans them across a worker pool of Options.Parallelism
// goroutines; within a sub-matrix, each wavelet step fans its independent
// 1-D vectors across the workers left over, and the noise-injection pass
// fans its fixed 64Ki-entry chunks across the same inner budget — every
// stage of the pipeline is parallel. Each worker owns a ping-pong buffer
// pair (matrix.Pipeline) and a reusable sub-matrix buffer, so the
// steady-state pass allocates no full matrices. Determinism is preserved
// at every parallelism level by a two-level substream discipline keyed to
// indices, never visit order: sub-matrix k owns the derived seed
// rng.SubstreamSeed(Options.Seed, k), and noise chunk c within it draws
// from rng.Substream of that derived seed and c (the contract is written
// out in docs/ARCHITECTURE.md). Cancellation reaches the same depth: ctx
// is observed between sub-matrices, between noise chunks, and between
// the 1-D vectors inside every wavelet step (about every 64Ki entries),
// so even a single-sub-matrix (SA = ∅) publish over a multi-dimensional
// domain aborts mid-transform. The one residual coarse unit is a single
// 1-D vector — a kernel invocation is never interrupted — so a publish
// of a one-dimensional domain observes ctx only between transform steps
// and noise chunks.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/transform"
)

// Options configures a Publish call.
type Options struct {
	// Epsilon is the ε-differential-privacy budget; must be positive.
	Epsilon float64
	// SA lists attribute names excluded from the wavelet transform
	// (Privelet+'s small-domain attributes). Empty means plain Privelet;
	// all attributes means the Basic mechanism.
	SA []string
	// Seed drives the Laplace noise stream; equal seeds give
	// bit-identical releases at any Parallelism (for experiments —
	// production releases should draw seeds from a secure source).
	Seed uint64
	// Parallelism caps the worker goroutines the publish engine uses;
	// values ≤ 0 default to runtime.GOMAXPROCS(0). The released matrix
	// does not depend on it.
	Parallelism int
}

// workers resolves the effective worker count (≤ 0 = all cores; the
// shared matrix.ResolveWorkers default).
func (o Options) workers() int { return matrix.ResolveWorkers(o.Parallelism) }

// Result is a published noisy frequency matrix together with its privacy
// accounting.
type Result struct {
	// Noisy is M*, shaped exactly like the input frequency matrix.
	Noisy *matrix.Matrix
	// Lambda is the base noise parameter λ = 2ρ/ε.
	Lambda float64
	// Rho is the generalized sensitivity of the transform used
	// (∏_{A∉SA} P(A); 1 when SA covers every attribute).
	Rho float64
	// Epsilon echoes the requested budget.
	Epsilon float64
	// VarianceBound is Corollary 1's worst-case noise variance for any
	// range-count query answered from Noisy.
	VarianceBound float64
	// SubMatrices is the number of sub-matrices processed (∏_{A∈SA}|A|).
	SubMatrices int
}

// Publish runs Privelet+ on a table: it materializes the frequency matrix
// and delegates to PublishMatrix. O(n + m) as the paper requires.
func Publish(ctx context.Context, t *dataset.Table, opts Options) (*Result, error) {
	m, err := t.FrequencyMatrix()
	if err != nil {
		return nil, err
	}
	return PublishMatrix(ctx, m, t.Schema(), opts)
}

// PublishMatrix runs Privelet+ directly on a frequency matrix. The input
// matrix is not modified.
//
// Cancelling ctx aborts the publish: workers observe the cancellation at
// sub-matrix boundaries, between 64Ki-entry noise chunks, and between
// the vectors inside every wavelet step (so a huge multi-dimensional
// SA = ∅ domain aborts mid-transform, not just at stage boundaries; a
// one-dimensional domain is a single vector per step and cancels between
// steps), finish their current granule, and PublishMatrix returns ctx's
// error with no goroutines left behind and no partial matrix. A serving
// layer can therefore tie a publish to the client's request context and
// reclaim the workers the moment the client disconnects.
func PublishMatrix(ctx context.Context, m *matrix.Matrix, schema *dataset.Schema, opts Options) (*Result, error) {
	if opts.Epsilon <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", opts.Epsilon)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	saIdx, restIdx, err := partition(schema, opts.SA)
	if err != nil {
		return nil, err
	}
	got, want := m.Dims(), schema.Dims()
	if len(got) != len(want) {
		return nil, fmt.Errorf("core: matrix dimensionality %d, schema has %d attributes", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, fmt.Errorf("core: matrix shape %v does not match schema %v", got, want)
		}
	}
	// SA covers everything: Basic mechanism (Figure 5 degenerates to
	// per-entry noise with sensitivity 2). The noise pass itself fans out
	// over fixed chunks keyed to substreams of the seed, so this path is
	// parallel too — and still bit-identical at any worker count.
	if len(restIdx) == 0 {
		lambda := 2 / opts.Epsilon
		noisy := m.Clone()
		if err := privacy.InjectLaplaceUniformCtx(ctx, noisy, lambda, opts.Seed, opts.workers()); err != nil {
			return nil, err
		}
		return &Result{
			Noisy:         noisy,
			Lambda:        lambda,
			Rho:           1,
			Epsilon:       opts.Epsilon,
			VarianceBound: privacy.BasicVarianceBound(opts.Epsilon, schema.DomainSize()),
			SubMatrices:   m.Len(),
		}, nil
	}

	// Build the HN transform over the non-SA dimensions.
	allSpecs := schema.Specs()
	restSpecs := make([]transform.Spec, len(restIdx))
	for i, ri := range restIdx {
		restSpecs[i] = allSpecs[ri]
	}
	hn, err := transform.New(restSpecs...)
	if err != nil {
		return nil, err
	}
	rho := hn.GeneralizedSensitivity()
	lambda := 2 * rho / opts.Epsilon
	weightVecs := make([][]float64, hn.NumDims())
	for i := range weightVecs {
		weightVecs[i] = hn.WeightVector(i)
	}

	saSizes := make([]int, len(saIdx))
	subCount := 1
	for i, si := range saIdx {
		saSizes[i] = schema.Attr(si).Size
		subCount *= saSizes[i]
	}

	// Every entry of M belongs to exactly one SA sub-matrix and every
	// sub-matrix is fully rewritten, so workers assemble M* directly into
	// a fresh matrix; the input is only ever read.
	noisy, err := matrix.New(m.Dims()...)
	if err != nil {
		return nil, err
	}

	// Fan the Figure-5 sub-matrices (steps 3–6) across a worker pool:
	// `outer` workers pull sub-matrix indices from a shared counter, and
	// each wavelet step inside a sub-matrix fans its vectors across the
	// `inner` workers left over (dominant when SA is small or empty).
	par := opts.workers()
	outer := par
	if outer > subCount {
		outer = subCount
	}

	var next atomic.Int64
	// process runs one outer worker with the given share of the inner
	// (per-wavelet-step) budget. Shares distribute the remainder of
	// par/outer across the first workers, so the total goroutine count
	// never exceeds the Parallelism cap and never strands budgeted
	// workers (par=8 over 5 sub-matrices: shares 2,2,2,1,1).
	process := func(innerWorkers int) error {
		// Pipeline and kernel cache are per-worker: ping-pong buffers,
		// kernel instances and their scratch all live for the worker's
		// whole run, so the steady-state per-sub-matrix allocation count
		// is zero no matter how many sub-matrices the worker drains.
		ex := transform.Exec{
			Workers: innerWorkers,
			Pipe:    matrix.NewPipeline(),
			Cache:   hn.NewKernelCache(innerWorkers),
			// Ctx reaches into every ApplyAlong chunk loop, so even a
			// single-sub-matrix publish (SA = ∅, the whole domain in one
			// transform pass) cancels mid-transform, about every 64Ki
			// entries, rather than only at sub-matrix boundaries.
			Ctx: ctx,
		}
		var sub *matrix.Matrix
		coords := make([]int, len(saIdx))
		for {
			// Cancellation is observed between sub-matrices: a worker
			// finishes the unit it started, then stops pulling new ones.
			if err := ctx.Err(); err != nil {
				return err
			}
			idx := int(next.Add(1)) - 1
			if idx >= subCount {
				return nil
			}
			// Decode the flat index into SA coordinates (mixed radix,
			// last dimension fastest — the order Figure 5 enumerates).
			rem := idx
			for k := len(saIdx) - 1; k >= 0; k-- {
				coords[k] = rem % saSizes[k]
				rem /= saSizes[k]
			}
			var err error
			sub, err = m.SubInto(saIdx, coords, sub)
			if err != nil {
				return err
			}
			c, err := hn.ForwardExec(sub, ex)
			if err != nil {
				return err
			}
			// Two-level substream discipline: sub-matrix idx owns the
			// derived seed SubstreamSeed(Seed, idx) — keyed by index, not
			// visit order — and the injection pass substreams it again
			// per 64Ki-entry chunk, fanning the noise across this
			// worker's inner budget. Equal seeds therefore give
			// bit-identical releases at any parallelism level.
			if err := privacy.InjectLaplaceCtx(ctx, c, weightVecs, lambda,
				rng.SubstreamSeed(opts.Seed, uint64(idx)), innerWorkers); err != nil {
				return err
			}
			rec, err := hn.InverseExec(c, ex)
			if err != nil {
				return err
			}
			// Workers write disjoint regions of noisy: no locking needed.
			if err := noisy.SetSub(saIdx, coords, rec); err != nil {
				return err
			}
		}
	}
	if outer <= 1 {
		if err := process(par); err != nil {
			return nil, err
		}
	} else {
		errs := make(chan error, outer)
		var wg sync.WaitGroup
		for w := 0; w < outer; w++ {
			inner := par / outer
			if w < par%outer {
				inner++
			}
			wg.Add(1)
			go func(inner int) {
				defer wg.Done()
				if err := process(inner); err != nil {
					errs <- err
				}
			}(inner)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	bound, err := privacy.PriveletPlusVarianceBound(opts.Epsilon, saSizes, restSpecs)
	if err != nil {
		return nil, err
	}
	return &Result{
		Noisy:         noisy,
		Lambda:        lambda,
		Rho:           rho,
		Epsilon:       opts.Epsilon,
		VarianceBound: bound,
		SubMatrices:   subCount,
	}, nil
}

// partition resolves the SA names into sorted attribute indices and
// returns (SA indices, remaining indices).
func partition(schema *dataset.Schema, sa []string) (saIdx, restIdx []int, err error) {
	seen := make(map[int]bool, len(sa))
	for _, name := range sa {
		i, err := schema.Index(name)
		if err != nil {
			return nil, nil, err
		}
		if seen[i] {
			return nil, nil, fmt.Errorf("core: attribute %q listed twice in SA", name)
		}
		seen[i] = true
		saIdx = append(saIdx, i)
	}
	sort.Ints(saIdx)
	for i := 0; i < schema.NumAttrs(); i++ {
		if !seen[i] {
			restIdx = append(restIdx, i)
		}
	}
	return saIdx, restIdx, nil
}

// RecommendSA returns the attribute names Corollary 1 suggests placing in
// SA: those with |A| ≤ P(A)²·H(A), for which Dwork-style per-entry noise
// beats the wavelet bound (§VI-D; the paper picks SA = {Age, Gender} for
// the census data this way).
func RecommendSA(schema *dataset.Schema) ([]string, error) {
	var out []string
	for i := 0; i < schema.NumAttrs(); i++ {
		a := schema.Attr(i)
		spec := schema.Specs()[i]
		p, err := privacy.PSpec(spec)
		if err != nil {
			return nil, err
		}
		h, err := privacy.HSpec(spec)
		if err != nil {
			return nil, err
		}
		if float64(a.Size) <= p*p*h {
			out = append(out, a.Name)
		}
	}
	return out, nil
}
