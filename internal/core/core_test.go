package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

func smallCensus(t testing.TB, n int, seed uint64) *dataset.Table {
	t.Helper()
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestPublishShapeAndAccounting(t *testing.T) {
	tbl := smallCensus(t, 1000, 1)
	res, err := Publish(context.Background(), tbl, Options{Epsilon: 1, SA: []string{"Age", "Gender"}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantDims := tbl.Schema().Dims()
	gotDims := res.Noisy.Dims()
	for i := range wantDims {
		if gotDims[i] != wantDims[i] {
			t.Fatalf("noisy shape %v, want %v", gotDims, wantDims)
		}
	}
	// rho = P(Occupation)·P(Income) = 3·(1+log2(64)) = 3·7 = 21.
	if res.Rho != 21 {
		t.Errorf("Rho = %v, want 21", res.Rho)
	}
	if res.Lambda != 42 {
		t.Errorf("Lambda = %v, want 2·21/1 = 42", res.Lambda)
	}
	// Sub-matrices: |Age|·|Gender| = 64·2 = 128.
	if res.SubMatrices != 128 {
		t.Errorf("SubMatrices = %d, want 128", res.SubMatrices)
	}
	if res.Epsilon != 1 {
		t.Errorf("Epsilon echo = %v", res.Epsilon)
	}
	if res.VarianceBound <= 0 {
		t.Errorf("VarianceBound = %v", res.VarianceBound)
	}
}

func TestPublishDeterminism(t *testing.T) {
	tbl := smallCensus(t, 500, 2)
	a, err := Publish(context.Background(), tbl, Options{Epsilon: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Publish(context.Background(), tbl, Options{Epsilon: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Noisy.AlmostEqual(b.Noisy, 0) {
		t.Error("same seed produced different releases")
	}
	c, err := Publish(context.Background(), tbl, Options{Epsilon: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Noisy.AlmostEqual(c.Noisy, 1e-9) {
		t.Error("different seeds produced identical releases")
	}
}

func TestPublishValidation(t *testing.T) {
	tbl := smallCensus(t, 10, 3)
	if _, err := Publish(context.Background(), tbl, Options{Epsilon: 0}); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := Publish(context.Background(), tbl, Options{Epsilon: -1}); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := Publish(context.Background(), tbl, Options{Epsilon: 1, SA: []string{"Nope"}}); err == nil {
		t.Error("unknown SA attribute should fail")
	}
	if _, err := Publish(context.Background(), tbl, Options{Epsilon: 1, SA: []string{"Age", "Age"}}); err == nil {
		t.Error("duplicate SA attribute should fail")
	}
	// Matrix/schema shape mismatch.
	m := matrix.MustNew(3, 3)
	if _, err := PublishMatrix(context.Background(), m, tbl.Schema(), Options{Epsilon: 1}); err == nil {
		t.Error("shape mismatch should fail")
	}
	m2 := matrix.MustNew(3)
	if _, err := PublishMatrix(context.Background(), m2, tbl.Schema(), Options{Epsilon: 1}); err == nil {
		t.Error("dimensionality mismatch should fail")
	}
}

func TestSAAllIsBasic(t *testing.T) {
	// SA = all attributes must reduce to the Basic mechanism: rho 1,
	// lambda 2/ε, noise variance per entry ≈ 2·(2/ε)².
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 50), dataset.OrdinalAttr("B", 50))
	m := matrix.MustNew(50, 50)
	res, err := PublishMatrix(context.Background(), m, s, Options{Epsilon: 0.5, SA: []string{"A", "B"}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 1 {
		t.Errorf("Rho = %v, want 1", res.Rho)
	}
	if res.Lambda != 4 {
		t.Errorf("Lambda = %v, want 4", res.Lambda)
	}
	var sum, sumSq float64
	for _, v := range res.Noisy.Data() {
		sum += v
		sumSq += v * v
	}
	n := float64(res.Noisy.Len())
	variance := sumSq/n - (sum/n)*(sum/n)
	want := 2.0 * 4 * 4 // 2λ²
	if math.Abs(variance-want) > 0.15*want {
		t.Errorf("per-entry variance = %v, want ~%v", variance, want)
	}
}

func TestNoiselessLambdaZeroPath(t *testing.T) {
	// With a huge epsilon the noise is tiny: M* ≈ M, confirming that the
	// transform pipeline itself is lossless.
	tbl := smallCensus(t, 300, 4)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PublishMatrix(context.Background(), m, tbl.Schema(), Options{Epsilon: 1e9, SA: []string{"Gender"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Noisy.AlmostEqual(m, 1e-3) {
		d, _ := res.Noisy.MaxAbsDiff(m)
		t.Fatalf("near-zero-noise release differs from M by %v", d)
	}
}

func TestQueryAccuracyBeatsBasicOnLargeQueries(t *testing.T) {
	// The headline claim on a small instance: for large-coverage queries
	// Privelet+'s square error is far below Basic's. Uses matched seeds
	// and averages over a query set.
	tbl := smallCensus(t, 20000, 5)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	truth := query.NewEvaluator(m)

	pres, err := PublishMatrix(context.Background(), m, tbl.Schema(), Options{Epsilon: 1, SA: []string{"Age", "Gender"}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := PublishMatrix(context.Background(), m, tbl.Schema(), Options{Epsilon: 1, SA: []string{"Age", "Gender", "Occupation", "Income"}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pEval := query.NewEvaluator(pres.Noisy)
	bEval := query.NewEvaluator(bres.Noisy)

	gen, err := workload.NewGenerator(tbl.Schema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	var pErr, bErr float64
	count := 0
	for i := 0; i < 400; i++ {
		q, err := gen.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		if q.Coverage() < 0.05 {
			continue // only large queries for this assertion
		}
		act, err := truth.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := pEval.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := bEval.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		pErr += workload.SquareError(pv, act)
		bErr += workload.SquareError(bv, act)
		count++
	}
	if count < 30 {
		t.Fatalf("only %d large queries sampled", count)
	}
	if pErr >= bErr {
		t.Fatalf("Privelet+ square error %v not below Basic %v on large queries", pErr/float64(count), bErr/float64(count))
	}
}

func TestVarianceBoundHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	// Corollary 1's bound must hold empirically for a fixed large query
	// over repeated releases.
	s := dataset.MustSchema(
		dataset.OrdinalAttr("A", 16),
		dataset.OrdinalAttr("B", 8),
	)
	m := matrix.MustNew(16, 8) // zero matrix: pure noise measurement
	q, err := query.NewBuilder(s).Range("A", 2, 13).Range("B", 1, 6).Build()
	if err != nil {
		t.Fatal(err)
	}
	const trials = 1500
	eps := 1.0
	var sumSq float64
	var bound float64
	for trial := 0; trial < trials; trial++ {
		res, err := PublishMatrix(context.Background(), m, s, Options{Epsilon: eps, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		bound = res.VarianceBound
		got, err := q.Eval(res.Noisy)
		if err != nil {
			t.Fatal(err)
		}
		sumSq += got * got
	}
	empirical := sumSq / trials
	if empirical > bound {
		t.Fatalf("empirical variance %v exceeds Corollary 1 bound %v", empirical, bound)
	}
}

func TestRecommendSA(t *testing.T) {
	// For the census schema, Age and Gender qualify (the paper's choice):
	// |Age| = 64 ≤ P²H = 7²·4 = 196; |Gender| = 2 ≤ 2²·4 = 16;
	// Occupation 64 > 3²·4 = 36; Income same as Age... Income |A|=64 ≤ 196.
	// So at small scale Income also qualifies — verify against formulas
	// rather than the paper's full-scale pick.
	tbl := smallCensus(t, 10, 6)
	got, err := RecommendSA(tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Age": true, "Gender": true, "Income": true}
	if len(got) != len(want) {
		t.Fatalf("RecommendSA = %v", got)
	}
	for _, name := range got {
		if !want[name] {
			t.Fatalf("RecommendSA includes %q unexpectedly", name)
		}
	}
	// At full scale the paper's SA = {Age, Gender} emerges: Age 101 ≤
	// 8²·4.5 = 288, Gender 2 ≤ 16, Occupation 512 > 36, Income 1001 >
	// (1+10)²·6 = 726.
	full, err := dataset.BrazilSpec(dataset.ScaleFull).Schema()
	if err != nil {
		t.Fatal(err)
	}
	got, err = RecommendSA(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "Age" || got[1] != "Gender" {
		t.Fatalf("full-scale RecommendSA = %v, want [Age Gender]", got)
	}
}

func TestPublishPreservesInput(t *testing.T) {
	tbl := smallCensus(t, 200, 8)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clone()
	if _, err := PublishMatrix(context.Background(), m, tbl.Schema(), Options{Epsilon: 1, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if !m.AlmostEqual(before, 0) {
		t.Fatal("PublishMatrix modified its input")
	}
}

func TestPriveletNoSA1D(t *testing.T) {
	// 1-D ordinal: plain Privelet §IV-B. Check ε accounting: m = 16,
	// rho = 5, lambda = 2·5/ε.
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 16))
	m := matrix.MustNew(16)
	res, err := PublishMatrix(context.Background(), m, s, Options{Epsilon: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 5 || res.Lambda != 5 {
		t.Errorf("rho, lambda = %v, %v; want 5, 5", res.Rho, res.Lambda)
	}
	if res.SubMatrices != 1 {
		t.Errorf("SubMatrices = %d, want 1", res.SubMatrices)
	}
}
