package baseline

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/privacy"
	"repro/internal/query"
)

func TestBasicNoiseMoments(t *testing.T) {
	m := matrix.MustNew(120, 120)
	res, err := Basic(context.Background(), m, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Magnitude != 2 {
		t.Errorf("Magnitude = %v, want 2/ε = 2", res.Magnitude)
	}
	var sum, sumSq float64
	for _, v := range res.Noisy.Data() {
		sum += v
		sumSq += v * v
	}
	n := float64(res.Noisy.Len())
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := 8.0 // 2·(2/ε)² at ε=1
	if math.Abs(variance-want) > 0.1*want {
		t.Errorf("variance = %v, want ~%v (the paper's 8/ε²)", variance, want)
	}
}

func TestBasicValidationAndDeterminism(t *testing.T) {
	m := matrix.MustNew(4)
	if _, err := Basic(context.Background(), m, 0, 1, 0); err == nil {
		t.Error("epsilon 0 should fail")
	}
	a, err := Basic(context.Background(), m, 1, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Basic(context.Background(), m, 1, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Noisy.AlmostEqual(b.Noisy, 0) {
		t.Error("same-seed Basic differs")
	}
	if m.Total() != 0 {
		t.Error("Basic modified its input")
	}
}

func TestBasicTable(t *testing.T) {
	tbl, err := dataset.MedicalExample()
	if err != nil {
		t.Fatal(err)
	}
	res, err := BasicTable(context.Background(), tbl, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	dims := res.Noisy.Dims()
	if dims[0] != 5 || dims[1] != 2 {
		t.Fatalf("noisy dims = %v", dims)
	}
}

func TestHWTOrdinalizedRoundTripAtHugeEpsilon(t *testing.T) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	res, err := HWTOrdinalized(m, tbl.Schema(), 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Noisy.AlmostEqual(m, 1e-3) {
		d, _ := res.Noisy.MaxAbsDiff(m)
		t.Fatalf("near-noiseless HWT release differs by %v", d)
	}
}

func TestHWTOrdinalizedAccounting(t *testing.T) {
	// 1-D nominal with 512 leaves treated as ordinal: rho = 1+log2(512) = 10.
	h, err := threeLevel(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(dataset.NominalAttr("Occ", h))
	m := matrix.MustNew(512)
	res, err := HWTOrdinalized(m, s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 10 {
		t.Errorf("Rho = %v, want 10", res.Rho)
	}
	if res.Lambda != 20 {
		t.Errorf("Lambda = %v, want 20", res.Lambda)
	}
	if _, err := HWTOrdinalized(m, s, 0, 2); err == nil {
		t.Error("epsilon 0 should fail")
	}
	bad := matrix.MustNew(8)
	if _, err := HWTOrdinalized(bad, s, 1, 2); err == nil {
		t.Error("shape mismatch should fail")
	}
}

// TestSectionVDComparison verifies the §V-D claim empirically at small
// scale: on a one-dimensional nominal domain, the nominal wavelet
// transform's subtree-query noise variance beats the ordinalized HWT's.
func TestSectionVDComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	h, err := threeLevel(8, 8) // 64 leaves, h = 3
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(dataset.NominalAttr("Occ", h))
	m := matrix.MustNew(64) // zero matrix: pure noise
	eps := 1.0
	const trials = 300

	// Query: the subtree of the first group (leaves 0..7).
	q, err := query.NewBuilder(s).Node("Occ", "g0").Build()
	if err != nil {
		t.Fatal(err)
	}
	var hwtSq, nomSq float64
	for trial := 0; trial < trials; trial++ {
		hres, err := HWTOrdinalized(m, s, eps, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		hv, err := q.Eval(hres.Noisy)
		if err != nil {
			t.Fatal(err)
		}
		hwtSq += hv * hv

		// Nominal path via core-less direct call: use privacy bound
		// comparison through the nominal transform from the core engine
		// is exercised elsewhere; here compare against theory only.
		_ = nomSq
	}
	empiricalHWT := hwtSq / trials
	boundHWT := privacy.HaarVarianceBound(eps, 64)
	if empiricalHWT > boundHWT {
		t.Errorf("HWT empirical variance %v exceeds Equation 4 bound %v", empiricalHWT, boundHWT)
	}
	// The nominal bound is far below the HWT bound at this shape.
	if privacy.NominalVarianceBound(eps, 3) >= boundHWT {
		t.Error("nominal bound should beat HWT bound for h=3, m=64")
	}
}

func threeLevel(groups, per int) (*hierarchy.Hierarchy, error) {
	return hierarchy.ThreeLevel(groups, per)
}
