// Package baseline implements the comparison mechanisms of the paper's
// evaluation:
//
//   - Basic — Dwork et al.'s method (§II-B): independent Laplace noise of
//     magnitude 2/ε on every frequency-matrix entry. This is the paper's
//     main comparator in Figures 6–11.
//   - HWTOrdinalized — the §V-D alternative that handles nominal
//     attributes by imposing the hierarchy's total order and applying the
//     ordinal Haar transform. Asymptotically worse than the nominal
//     wavelet transform (O(log³m) vs O(h²) variance); kept as an ablation.
package baseline

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/privacy"
	"repro/internal/transform"
)

// BasicResult is a Basic-mechanism release.
type BasicResult struct {
	Noisy *matrix.Matrix
	// Magnitude is the per-entry Laplace magnitude 2/ε.
	Magnitude float64
	Epsilon   float64
}

// Basic publishes a noisy frequency matrix with Dwork et al.'s method:
// each entry receives independent Laplace(2/ε) noise (sensitivity 2,
// Theorem 1). The input matrix is not modified. The noise pass fans out
// across `workers` goroutines (≤ 0 defaults to GOMAXPROCS) over fixed
// chunks keyed to substreams of the seed, so the release never depends
// on the worker count. Cancelling ctx aborts the pass early with ctx's
// error.
func Basic(ctx context.Context, m *matrix.Matrix, epsilon float64, seed uint64, workers int) (*BasicResult, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("baseline: epsilon must be positive, got %v", epsilon)
	}
	workers = matrix.ResolveWorkers(workers)
	magnitude := 2 / epsilon
	noisy := m.Clone()
	if err := privacy.InjectLaplaceUniformCtx(ctx, noisy, magnitude, seed, workers); err != nil {
		return nil, err
	}
	return &BasicResult{Noisy: noisy, Magnitude: magnitude, Epsilon: epsilon}, nil
}

// BasicTable is Basic starting from a table.
func BasicTable(ctx context.Context, t *dataset.Table, epsilon float64, seed uint64, workers int) (*BasicResult, error) {
	m, err := t.FrequencyMatrix()
	if err != nil {
		return nil, err
	}
	return Basic(ctx, m, epsilon, seed, workers)
}

// HWTResult is an HWTOrdinalized release.
type HWTResult struct {
	Noisy   *matrix.Matrix
	Lambda  float64
	Rho     float64
	Epsilon float64
}

// HWTOrdinalized publishes via Privelet but treats every nominal
// dimension as ordinal under the hierarchy's imposed leaf order (§V-A's
// "one way to circumvent"), so the Haar transform is used everywhere.
// Subtree predicates remain contiguous intervals, so queries still work;
// only the noise profile differs. The input matrix is not modified.
func HWTOrdinalized(m *matrix.Matrix, schema *dataset.Schema, epsilon float64, seed uint64) (*HWTResult, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("baseline: epsilon must be positive, got %v", epsilon)
	}
	specs := make([]transform.Spec, schema.NumAttrs())
	for i := 0; i < schema.NumAttrs(); i++ {
		specs[i] = transform.Ordinal(schema.Attr(i).Size)
	}
	hn, err := transform.New(specs...)
	if err != nil {
		return nil, err
	}
	got, want := m.Dims(), schema.Dims()
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			return nil, fmt.Errorf("baseline: matrix shape %v does not match schema %v", got, want)
		}
	}
	rho := hn.GeneralizedSensitivity()
	lambda := 2 * rho / epsilon
	weightVecs := make([][]float64, hn.NumDims())
	for i := range weightVecs {
		weightVecs[i] = hn.WeightVector(i)
	}
	c, err := hn.Forward(m)
	if err != nil {
		return nil, err
	}
	if err := privacy.InjectLaplace(c, weightVecs, lambda, seed); err != nil {
		return nil, err
	}
	noisy, err := hn.Inverse(c)
	if err != nil {
		return nil, err
	}
	return &HWTResult{Noisy: noisy, Lambda: lambda, Rho: rho, Epsilon: epsilon}, nil
}
