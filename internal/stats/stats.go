// Package stats provides the summary statistics and distributional tests
// used across the experiment harness (the §VII evaluation, Figures 6-11)
// and the test suite: moments, quantiles, empirical CDFs and a
// one-sample Kolmogorov–Smirnov test.
// Everything is plain stdlib math — no external scientific dependencies,
// matching the repository's offline constraint.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the first two moments and extrema of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n−1 denominator)
	Min, Max float64
}

// Summarize computes a Summary in one pass (Welford's algorithm, which is
// numerically stable for the long noise-sample vectors the tests use).
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var m2 float64
	for i, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		delta := x - s.Mean
		s.Mean += delta / float64(i+1)
		m2 += delta * (x - s.Mean)
	}
	if s.N > 1 {
		s.Variance = m2 / float64(s.N-1)
	}
	return s, nil
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the sample using linear
// interpolation between order statistics (type-7, the spreadsheet/NumPy
// default). The input is not modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// LaplaceCDF evaluates the CDF of the zero-mean Laplace distribution with
// the given magnitude (scale) b at x.
func LaplaceCDF(b float64) func(float64) float64 {
	return func(x float64) float64 {
		if x < 0 {
			return 0.5 * math.Exp(x/b)
		}
		return 1 - 0.5*math.Exp(-x/b)
	}
}

// NormalCDF evaluates the CDF of the normal distribution with the given
// mean and standard deviation at x.
func NormalCDF(mean, sd float64) func(float64) float64 {
	return func(x float64) float64 {
		return 0.5 * math.Erfc(-(x-mean)/(sd*math.Sqrt2))
	}
}

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| of the sample against the given CDF.
func KSStatistic(xs []float64, cdf func(float64) float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// Both one-sided gaps around the step at x.
		if gap := float64(i+1)/float64(n) - f; gap > d {
			d = gap
		}
		if gap := f - float64(i)/float64(n); gap > d {
			d = gap
		}
	}
	return d, nil
}

// KSTest reports whether the sample is consistent with the CDF at
// significance level alpha ∈ {0.01, 0.05, 0.10}, using the asymptotic
// critical value c(α)·√(1/n) with c = √(−ln(α/2)/2). Returns the
// statistic, the critical value, and pass/fail.
func KSTest(xs []float64, cdf func(float64) float64, alpha float64) (d, critical float64, ok bool, err error) {
	d, err = KSStatistic(xs, cdf)
	if err != nil {
		return 0, 0, false, err
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, false, fmt.Errorf("stats: alpha %v outside (0,1)", alpha)
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	critical = c / math.Sqrt(float64(len(xs)))
	return d, critical, d <= critical, nil
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length samples.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points")
	}
	sx, err := Summarize(xs)
	if err != nil {
		return 0, err
	}
	sy, err := Summarize(ys)
	if err != nil {
		return 0, err
	}
	if sx.Variance == 0 || sy.Variance == 0 {
		return 0, fmt.Errorf("stats: zero-variance input")
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - sx.Mean) * (ys[i] - sy.Mean)
	}
	cov /= float64(len(xs) - 1)
	return cov / math.Sqrt(sx.Variance*sy.Variance), nil
}

// LinearFit returns the least-squares slope and intercept of y on x —
// used by the timing experiments to verify linearity in n and m.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: need at least 2 points")
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	n := float64(len(xs))
	meanX, meanY := sumX/n, sumY/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - meanX
		sxx += dx * dx
		sxy += dx * (ys[i] - meanY)
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("stats: x has zero variance")
	}
	slope = sxy / sxx
	return slope, meanY - slope*meanX, nil
}
