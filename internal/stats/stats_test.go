package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Fatalf("variance = %v, want 2.5 (unbiased)", s.Variance)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample should fail")
	}
	one, err := Summarize([]float64{7})
	if err != nil || one.Variance != 0 {
		t.Errorf("single point: %+v, %v", one, err)
	}
}

func TestSummarizeStability(t *testing.T) {
	// Welford must survive a large offset without catastrophic
	// cancellation.
	base := 1e9
	xs := []float64{base + 1, base + 2, base + 3}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Variance-1) > 1e-6 {
		t.Fatalf("variance = %v, want 1", s.Variance)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("p out of range should fail")
	}
	if v, err := Quantile([]float64{42}, 0.9); err != nil || v != 42 {
		t.Errorf("single point quantile = %v, %v", v, err)
	}
}

func TestLaplaceCDF(t *testing.T) {
	cdf := LaplaceCDF(2)
	if cdf(0) != 0.5 {
		t.Errorf("CDF(0) = %v, want 0.5", cdf(0))
	}
	if got, want := cdf(2), 1-0.5*math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(2) = %v, want %v", got, want)
	}
	if got, want := cdf(-2), 0.5*math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(-2) = %v, want %v", got, want)
	}
}

func TestNormalCDF(t *testing.T) {
	cdf := NormalCDF(0, 1)
	if math.Abs(cdf(0)-0.5) > 1e-12 {
		t.Errorf("Φ(0) = %v", cdf(0))
	}
	if math.Abs(cdf(1.96)-0.975) > 1e-3 {
		t.Errorf("Φ(1.96) = %v, want ≈0.975", cdf(1.96))
	}
}

// TestKSLaplaceSamplerPasses is the distributional acceptance test for
// the repository's Laplace sampler: at n = 50 000 draws the KS test
// against the true CDF must pass at α = 0.01.
func TestKSLaplaceSamplerPasses(t *testing.T) {
	r := rng.New(12345)
	const n = 50_000
	b := 3.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Laplace(b)
	}
	d, crit, ok, err := KSTest(xs, LaplaceCDF(b), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Laplace sampler failed KS test: D=%v > critical %v", d, crit)
	}
}

// TestKSDetectsWrongScale: the same sampler must FAIL a KS test against a
// mis-scaled CDF, proving the test has power.
func TestKSDetectsWrongScale(t *testing.T) {
	r := rng.New(54321)
	const n = 50_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Laplace(3)
	}
	_, _, ok, err := KSTest(xs, LaplaceCDF(4), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("KS test accepted a wrong scale; no power")
	}
}

// TestKSNormalSampler applies the same acceptance test to NormFloat64.
func TestKSNormalSampler(t *testing.T) {
	r := rng.New(999)
	const n = 50_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	d, crit, ok, err := KSTest(xs, NormalCDF(0, 1), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("normal sampler failed KS: D=%v > %v", d, crit)
	}
}

func TestKSValidation(t *testing.T) {
	if _, err := KSStatistic(nil, LaplaceCDF(1)); err == nil {
		t.Error("empty sample should fail")
	}
	if _, _, _, err := KSTest([]float64{1}, LaplaceCDF(1), 0); err == nil {
		t.Error("alpha 0 should fail")
	}
	if _, _, _, err := KSTest([]float64{1}, LaplaceCDF(1), 1); err == nil {
		t.Error("alpha 1 should fail")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	c, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	neg := []float64{8, 6, 4, 2}
	c, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if _, err := Correlation(xs, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err == nil {
		t.Error("too-short input should fail")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance should fail")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %vx + %v, want 2x + 1", slope, intercept)
	}
	if _, _, err := LinearFit(xs, ys[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := LinearFit([]float64{5, 5}, []float64{1, 2}); err == nil {
		t.Error("constant x should fail")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
}

// TestTimingLinearityWithFit demonstrates the intended use: synthetic
// y = a·x + noise recovers slope a.
func TestTimingLinearityWithFit(t *testing.T) {
	r := rng.New(31)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 3.5*xs[i] + 10 + r.NormFloat64()*0.5
	}
	slope, _, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-3.5) > 0.1 {
		t.Fatalf("recovered slope %v, want ≈3.5", slope)
	}
}
