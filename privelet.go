package privelet

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hay"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/query"
)

// Type aliases expose the substrate types through the public package so
// that importers never touch internal paths.
type (
	// Schema describes a table's attributes.
	Schema = dataset.Schema
	// Table is a multiset of tuples over a Schema.
	Table = dataset.Table
	// Attribute is one column description.
	Attribute = dataset.Attribute
	// Hierarchy is a nominal attribute's generalization tree.
	Hierarchy = hierarchy.Hierarchy
	// HierarchyNode is one node of a Hierarchy.
	HierarchyNode = hierarchy.Node
	// Matrix is a dense d-dimensional frequency matrix.
	Matrix = matrix.Matrix
	// Query is a normalized range-count query.
	Query = query.Query
	// QueryBuilder assembles queries against a schema.
	QueryBuilder = query.Builder
	// QuerySource streams queries into CountStream, one at a time.
	QuerySource = query.Source
	// AnswerSink receives CountStream's in-order answer chunks.
	AnswerSink = query.Sink
)

// NewSchema validates and builds a schema. See dataset.NewSchema.
func NewSchema(attrs ...Attribute) (*Schema, error) { return dataset.NewSchema(attrs...) }

// OrdinalAttr declares an ordinal attribute with domain [0, size).
func OrdinalAttr(name string, size int) Attribute { return dataset.OrdinalAttr(name, size) }

// NominalAttr declares a nominal attribute over hierarchy h.
func NominalAttr(name string, h *Hierarchy) Attribute { return dataset.NominalAttr(name, h) }

// NewTable returns an empty table over schema.
func NewTable(schema *Schema) *Table { return dataset.NewTable(schema) }

// FlatHierarchy builds a two-level hierarchy with n leaves.
func FlatHierarchy(n int) (*Hierarchy, error) { return hierarchy.Flat(n) }

// ThreeLevelHierarchy builds a root → groups → leaves hierarchy.
func ThreeLevelHierarchy(groups, leavesPerGroup int) (*Hierarchy, error) {
	return hierarchy.ThreeLevel(groups, leavesPerGroup)
}

// BuildHierarchy validates a hand-constructed hierarchy tree.
func BuildHierarchy(root *HierarchyNode) (*Hierarchy, error) { return hierarchy.Build(root) }

// Options configures the legacy Publish wrapper. New code should use
// Params with PublishWith or Publisher.Publish; the fields correspond
// one-to-one.
type Options struct {
	// Epsilon is the ε-differential-privacy budget (must be positive).
	Epsilon float64
	// SA lists attributes to exclude from the wavelet transform
	// (Privelet+). nil is plain Privelet; all attributes is Basic.
	SA []string
	// Seed drives the (deterministic) noise stream; equal seeds give
	// bit-identical releases at any Parallelism.
	Seed uint64
	// Sanitize, when set, post-processes the release to non-negative
	// integer counts. Free of privacy cost.
	Sanitize bool
	// Parallelism caps the publish engine's worker goroutines; ≤ 0
	// defaults to runtime.GOMAXPROCS(0). It never affects the release's
	// values, only how fast they are computed.
	Parallelism int
}

// Release is a published noisy frequency matrix plus everything needed to
// answer range-count queries against it.
type Release struct {
	schema  *Schema
	noisy   *Matrix
	eval    *query.Evaluator
	eps     float64
	rho     float64
	lambda  float64
	bound   float64
	machine string
}

// Publish releases the table's frequency matrix under ε-differential
// privacy with Privelet+ (the paper's Figure 5). It runs in O(n + m).
//
// It is a compatibility wrapper over the Mechanism API: exactly
// PublishWith(ctx, "privelet+", TableFrequency(t), Params{...}) with a
// background context. New code that streams rows, selects mechanisms by
// name, or needs cancellation should use Publisher/PublishWith directly.
func Publish(t *Table, opts Options) (*Release, error) {
	freq, err := TableFrequency(t)
	if err != nil {
		return nil, err
	}
	return PublishWith(context.Background(), "privelet+", freq, Params{
		Epsilon: opts.Epsilon, SA: opts.SA, Seed: opts.Seed,
		Parallelism: opts.Parallelism, Sanitize: opts.Sanitize,
	})
}

// PublishBasic releases with Dwork et al.'s Basic mechanism: independent
// Laplace(2/ε) noise per entry. Compatibility wrapper over the "basic"
// registry mechanism; equivalent to Publish with SA = all attributes.
func PublishBasic(t *Table, epsilon float64, seed uint64) (*Release, error) {
	freq, err := TableFrequency(t)
	if err != nil {
		return nil, err
	}
	return PublishWith(context.Background(), "basic", freq, Params{Epsilon: epsilon, Seed: seed})
}

// PublishHistogram releases a one-dimensional histogram with the Hay et
// al. hierarchical-consistency mechanism — the "hay" registry mechanism,
// kept as a slice-in/slice-out convenience because the mechanism is
// one-dimensional by construction.
func PublishHistogram(v []float64, epsilon float64, seed uint64) ([]float64, error) {
	res, err := hay.Publish(context.Background(), v, epsilon, seed)
	if err != nil {
		return nil, err
	}
	return res.Histogram, nil
}

// RecommendSA returns the attributes Corollary 1 suggests excluding from
// the wavelet transform: those with |A| ≤ P(A)²·H(A).
func RecommendSA(schema *Schema) ([]string, error) { return core.RecommendSA(schema) }

// NewQuery starts a range-count query against the release's schema.
func (r *Release) NewQuery() *QueryBuilder { return query.NewBuilder(r.schema) }

// Count answers a range-count query from the released matrix in O(2^d).
func (r *Release) Count(q Query) (float64, error) { return r.eval.Count(q) }

// CountBatch answers a whole query workload in one call, fanning the
// queries across a worker pool over the release's summed-area evaluator
// (workers ≤ 0 means all cores). Answers come back in input order and
// are bit-identical (float64 ==) to calling Count in a serial loop at
// any worker count — batch execution is a performance knob, never part
// of the answer. ctx cancels a long workload between queries.
func (r *Release) CountBatch(ctx context.Context, queries []Query, workers int) ([]float64, error) {
	return query.Batch{Eval: r.eval, Workers: workers}.Execute(ctx, queries)
}

// CountStream answers a streamed workload in fixed-size in-order answer
// chunks, delivering each chunk to sink while later chunks still
// execute on the worker pool — peak memory is O(chunk), not
// O(workload), so a million-query workload streams end-to-end. It
// returns the number of answers delivered; on error, chunks delivered
// before the failure stay delivered. Answers are bit-identical
// (float64 ==) to CountBatch over the same queries at any worker count
// (chunking reorders only computation, never arithmetic). See
// query.Batch.ExecuteStream for the source/sink contract.
func (r *Release) CountStream(ctx context.Context, src QuerySource, sink AnswerSink, workers int) (int, error) {
	return query.Batch{Eval: r.eval, Workers: workers}.ExecuteStream(ctx, src, sink)
}

// Matrix returns the released noisy frequency matrix. Callers may read it
// freely; mutating it desynchronizes Count's prefix table.
func (r *Release) Matrix() *Matrix { return r.noisy }

// Schema returns the schema the release was published under.
func (r *Release) Schema() *Schema { return r.schema }

// Epsilon returns the privacy budget spent.
func (r *Release) Epsilon() float64 { return r.eps }

// Sensitivity returns the generalized sensitivity ρ of the transform the
// release used (1 for Basic).
func (r *Release) Sensitivity() float64 { return r.rho }

// Lambda returns the base Laplace parameter λ = 2ρ/ε.
func (r *Release) Lambda() float64 { return r.lambda }

// VarianceBound returns the analytic worst-case noise variance for any
// range-count query answered from this release.
func (r *Release) VarianceBound() float64 { return r.bound }

// Mechanism names the publishing mechanism, as registered (one of
// Mechanisms(), e.g. "privelet+", "privelet", "basic", "hay"). The name
// travels with the release through Save/Load, the daemon's store, and
// the /export endpoint.
func (r *Release) Mechanism() string { return r.machine }

// String summarizes the release.
func (r *Release) String() string {
	return fmt.Sprintf("privelet.Release{mechanism=%s ε=%g ρ=%g λ=%g varBound=%.4g m=%d}",
		r.machine, r.eps, r.rho, r.lambda, r.bound, r.noisy.Len())
}
