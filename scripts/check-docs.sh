#!/bin/sh
# check-docs.sh — documentation gates, run by CI and locally as
# scripts/check-docs.sh. Three checks:
#
#   1. Every internal/ package (and the root package) has a package
#      comment. `go doc <pkg>` prints the package clause, a blank line,
#      then the package comment (which gofmt guarantees starts with
#      "Package <name>"); if the third line is missing or does not start
#      with "Package ", there is no package comment.
#   2. Every internal/ package's doc comment carries a paper-section
#      anchor (§N, Figure N, Theorem N, Equation N, Lemma N, or
#      Corollary N) tying the code back to Xiao–Wang–Gehrke — the
#      repository's documentation convention since the PR 2 godoc audit.
#   3. Every docs/*.md file referenced from README.md or doc.go exists,
#      and every file in docs/ is actually referenced from one of them
#      (no orphaned documents).
set -eu
cd "$(dirname "$0")/.."

fail=0

# --- 1 + 2: package comments and paper anchors -------------------------
for dir in . internal/*/; do
    pkg="repro/${dir#./}"
    pkg="${pkg%/}"
    pkg="${pkg%/.}"
    docout=$(go doc "$pkg" 2>/dev/null) || docout=""
    third=$(printf '%s\n' "$docout" | sed -n '3p')
    case "$third" in
        "Package "*) ;;
        *)
            echo "missing package comment: $pkg" >&2
            fail=1
            continue
            ;;
    esac
    case "$dir" in
        internal/*)
            if ! printf '%s\n' "$docout" | grep -Eq '§|Figure [0-9]|Theorem [0-9]|Equation [0-9]|Lemma [0-9]|Corollary [0-9]'; then
                echo "package comment lacks a paper-section anchor (§N / Figure N / Theorem N / ...): $pkg" >&2
                fail=1
            fi
            ;;
    esac
done

# --- 3: docs/*.md cross-references -------------------------------------
refs=$(grep -ohE 'docs/[A-Za-z0-9_.-]+\.md' README.md doc.go 2>/dev/null | sort -u)
for ref in $refs; do
    if [ ! -f "$ref" ]; then
        echo "broken docs reference (in README.md/doc.go): $ref" >&2
        fail=1
    fi
done
if [ -d docs ]; then
    for f in docs/*.md; do
        [ -e "$f" ] || continue
        if ! printf '%s\n' "$refs" | grep -qx "$f"; then
            echo "orphaned document (not referenced from README.md or doc.go): $f" >&2
            fail=1
        fi
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "docs check failed: see messages above (package-comment and anchor conventions: ISSUE 2 godoc audit, ISSUE 4 docs pass)" >&2
    exit 1
fi
echo "docs check: package comments, paper anchors, and docs/ references all OK"
