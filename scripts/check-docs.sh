#!/bin/sh
# check-docs.sh — fail if any internal/ package (or the root package)
# lacks a package comment. Used by CI; run locally as scripts/check-docs.sh.
#
# `go doc <pkg>` prints the package clause, a blank line, then the package
# comment (which gofmt guarantees starts with "Package <name>"). If the
# third line is missing or does not start with "Package ", there is no
# package comment.
set -eu
cd "$(dirname "$0")/.."

fail=0
for dir in . internal/*/; do
    pkg="repro/${dir#./}"
    pkg="${pkg%/}"
    pkg="${pkg%/.}"
    third=$(go doc "$pkg" 2>/dev/null | sed -n '3p') || third=""
    case "$third" in
        "Package "*) ;;
        *)
            echo "missing package comment: $pkg" >&2
            fail=1
            ;;
    esac
done
if [ "$fail" -ne 0 ]; then
    echo "docs check failed: every package needs a package comment (see ISSUE 2 godoc audit)" >&2
    exit 1
fi
echo "docs check: all packages have package comments"
