#!/bin/sh
# lint.sh — staticcheck gate. Uses the staticcheck on PATH when present;
# otherwise installs a pinned version (so CI runs are reproducible) into
# GOBIN and uses that. Run locally as scripts/lint.sh.
set -eu
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="2025.1.1"

if command -v staticcheck >/dev/null 2>&1; then
    bin=staticcheck
else
    gobin="$(go env GOPATH)/bin"
    bin="$gobin/staticcheck"
    if [ ! -x "$bin" ]; then
        echo "lint: installing staticcheck@$STATICCHECK_VERSION ..." >&2
        go install "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"
    fi
fi

"$bin" ./...
echo "lint: staticcheck clean"
