package privelet_test

import (
	"math"
	"testing"

	privelet "repro"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestPublicAnalyzer(t *testing.T) {
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("A", 16))
	if err != nil {
		t.Fatal(err)
	}
	an, err := privelet.NewAnalyzer(schema, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := privelet.NewQueryBuilder(schema).Range("A", 0, 15).Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := an.QueryVariance(q)
	if err != nil {
		t.Fatal(err)
	}
	// Full-domain query touches only the base coefficient: r = 16,
	// W = 16, λ = 2·5 ⇒ Var = 2λ²·(16/16)² = 200.
	if math.Abs(v-200) > 1e-9 {
		t.Fatalf("full-domain exact variance = %v, want 200", v)
	}
	// Exact variance never exceeds the §VI-D bound 600/ε².
	if v > 600 {
		t.Fatalf("exact variance %v exceeds the worst-case bound 600", v)
	}
}

func TestPublicBestSA(t *testing.T) {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.NominalAttr("Gender", gender),
		privelet.OrdinalAttr("Income", 512),
	)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Queries(200, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	sa, stats, err := privelet.BestSA(schema, 1.0, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 1 || sa[0] != "Gender" {
		t.Fatalf("BestSA = %v, want [Gender]", sa)
	}
	if stats.Mean <= 0 || stats.Max < stats.Mean {
		t.Fatalf("stats implausible: %+v", stats)
	}
}

func TestPublicMarginals(t *testing.T) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	rels, err := privelet.PublishMarginals(tbl, [][]string{
		{"Age"}, {"Occupation", "Gender"},
	}, privelet.MarginalOptions{Epsilon: 1.0, Seed: 4, AutoSA: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("marginals = %d", len(rels))
	}
	if rels[0].Epsilon != 0.5 || rels[1].Epsilon != 0.5 {
		t.Error("budget not split evenly")
	}
	if rels[1].Schema.Attr(0).Name != "Occupation" {
		t.Error("marginal attribute order not preserved")
	}
}

func TestAnalyzerAgreesWithReleaseEmpirically(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	// End-to-end public-API check: the analyzer's exact variance matches
	// the empirical variance of repeated Publish calls.
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("A", 32))
	if err != nil {
		t.Fatal(err)
	}
	empty := privelet.NewTable(schema)
	q0, err := privelet.NewQueryBuilder(schema).Range("A", 5, 20).Build()
	if err != nil {
		t.Fatal(err)
	}
	an, err := privelet.NewAnalyzer(schema, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := an.QueryVariance(q0)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 3000
	var sumSq float64
	for i := 0; i < trials; i++ {
		rel, err := privelet.Publish(empty, privelet.Options{Epsilon: 1.0, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		v, err := rel.Count(q0)
		if err != nil {
			t.Fatal(err)
		}
		sumSq += v * v
	}
	mc := sumSq / trials
	if rel := math.Abs(mc-exact) / exact; rel > 0.10 {
		t.Fatalf("exact %v vs empirical %v (gap %.3f)", exact, mc, rel)
	}
}
