package privelet_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	privelet "repro"
	"repro/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tbl, err := dataset.MedicalExample()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := privelet.Publish(tbl, privelet.Options{Epsilon: 1.0, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rel.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := privelet.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Accounting survives.
	if loaded.Epsilon() != rel.Epsilon() ||
		loaded.Sensitivity() != rel.Sensitivity() ||
		loaded.Lambda() != rel.Lambda() ||
		loaded.VarianceBound() != rel.VarianceBound() ||
		loaded.Mechanism() != rel.Mechanism() {
		t.Fatalf("accounting lost: %s vs %s", loaded, rel)
	}
	// The matrix survives bit-for-bit.
	if !loaded.Matrix().AlmostEqual(rel.Matrix(), 0) {
		t.Fatal("matrix lost precision")
	}
	// Queries answer identically, including hierarchy-node predicates
	// (the hierarchy must survive serialization).
	q1, err := rel.NewQuery().Range("Age", 0, 2).Leaf("HasDiabetes", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := loaded.NewQuery().Range("Age", 0, 2).Leaf("HasDiabetes", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := rel.Count(q1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Count(q2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("loaded release answers %v, original %v", b, a)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := privelet.Load(strings.NewReader("not a release")); err == nil {
		t.Fatal("Load of garbage should fail")
	}
	if _, err := privelet.Load(strings.NewReader("")); err == nil {
		t.Fatal("Load of empty input should fail")
	}
}
