package privelet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"unicode"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hay"
	"repro/internal/matrix"
	"repro/internal/postprocess"
	"repro/internal/privacy"
	"repro/internal/query"
)

// Params configures one mechanism invocation. Unlike the legacy Options
// it is mechanism-agnostic: every registered mechanism consumes the same
// parameter set and rejects the fields it cannot honour (for example,
// SA on a mechanism without a transform to exclude attributes from).
type Params struct {
	// Epsilon is the ε-differential-privacy budget (must be positive).
	Epsilon float64
	// SA lists attributes excluded from the wavelet transform. Only the
	// "privelet+" mechanism accepts a non-empty SA; the others have no
	// transform/SA split and reject it rather than silently ignore it.
	SA []string
	// Seed drives the deterministic noise stream; equal seeds give
	// bit-identical releases at any Parallelism.
	Seed uint64
	// Parallelism caps the publish engine's worker goroutines; ≤ 0
	// defaults to runtime.GOMAXPROCS(0). It never affects release values.
	Parallelism int
	// Sanitize post-processes the release to non-negative integer counts.
	// It is applied by the release builder after the mechanism runs, so
	// individual mechanisms never see it.
	Sanitize bool
}

// Frequency is a schema-shaped frequency matrix — the paper's M, and the
// input every mechanism consumes. Build one with NewFrequency, from a
// buffered table with TableFrequency, or incrementally with a Publisher.
// Treat both fields as read-only once the Frequency is handed to a
// mechanism.
type Frequency struct {
	// Schema describes the attributes; M's shape equals Schema.Dims().
	Schema *Schema
	// M holds the (exact) frequency counts.
	M *Matrix
}

// NewFrequency validates that m is shaped by schema and couples them.
func NewFrequency(schema *Schema, m *Matrix) (*Frequency, error) {
	if schema == nil || m == nil {
		return nil, fmt.Errorf("privelet: nil frequency components")
	}
	want, got := schema.Dims(), m.Dims()
	if len(want) != len(got) {
		return nil, fmt.Errorf("privelet: matrix dimensionality %d, schema has %d attributes", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return nil, fmt.Errorf("privelet: matrix shape %v does not match schema %v", got, want)
		}
	}
	return &Frequency{Schema: schema, M: m}, nil
}

// TableFrequency materializes a buffered table's frequency matrix. The
// streaming Publisher is the preferred ingest path when n is large; this
// helper serves callers that already hold a Table.
func TableFrequency(t *Table) (*Frequency, error) {
	m, err := t.FrequencyMatrix()
	if err != nil {
		return nil, err
	}
	return &Frequency{Schema: t.Schema(), M: m}, nil
}

// Result is a mechanism's raw output: the noisy matrix plus the privacy
// accounting a release carries. PublishWith wraps it into a queryable
// Release; serving layers that persist releases consume it directly.
type Result struct {
	// Noisy is M*, shaped exactly like the input frequency matrix.
	Noisy *Matrix
	// Epsilon echoes the privacy budget spent.
	Epsilon float64
	// Rho is the generalized sensitivity of the mechanism's function set
	// (1 for Basic).
	Rho float64
	// Lambda is the base Laplace parameter.
	Lambda float64
	// VarianceBound is the mechanism's analytic worst-case noise variance
	// for any range-count query answered from Noisy.
	VarianceBound float64
}

// Mechanism is one ε-differentially-private publishing algorithm: it
// maps an exact frequency matrix to a noisy one plus accounting. All
// built-in mechanisms are deterministic in (freq, Params) — equal seeds
// give bit-identical releases — and honour ctx cancellation as described
// on core.PublishMatrix.
//
// Implementations must be safe for concurrent use: one registered
// mechanism value serves every publish in the process.
type Mechanism interface {
	// Name returns the registry key, e.g. "privelet+". Names are
	// lowercase, stable across releases of this module, and embedded in
	// the codec header of every release the mechanism publishes.
	Name() string
	// Publish releases freq under p. The input matrix must not be
	// modified.
	Publish(ctx context.Context, freq *Frequency, p Params) (*Result, error)
}

// ParamsValidator is optionally implemented by a Mechanism that can
// check (schema, Params) compatibility without any data. Streaming
// front ends call it before ingest, so a request that the mechanism
// would reject anyway (SA on a transform-free mechanism, a
// multi-attribute schema on "hay", a non-positive ε) fails before the
// whole input is read rather than after. All built-ins implement it.
type ParamsValidator interface {
	ValidateParams(schema *Schema, p Params) error
}

// ValidateParams runs the mechanism's pre-ingest check when it offers
// one; mechanisms without it validate at Publish time only.
func ValidateParams(m Mechanism, schema *Schema, p Params) error {
	if v, ok := m.(ParamsValidator); ok {
		return v.ValidateParams(schema, p)
	}
	return nil
}

// mechanisms is the process-wide registry. A mutex-guarded map (rather
// than sync.Map) keeps registration errors synchronous and lookup simple;
// registration happens at init time, lookups are read-mostly.
var (
	mechMu     sync.RWMutex
	mechanisms = make(map[string]Mechanism)
)

// RegisterMechanism adds m to the registry under m.Name(). It errors on
// an invalid name (empty, or containing whitespace/control characters —
// names travel through CLI flags, query parameters and the codec
// header, all of which need them token-shaped) or a name already
// taken — mechanisms are process-wide, so a collision is a programming
// error surfaced to the caller rather than a silent overwrite.
// Extensions register from their own init functions; the four built-ins
// are registered by this package.
func RegisterMechanism(m Mechanism) error {
	if m == nil || m.Name() == "" {
		return fmt.Errorf("privelet: mechanism with empty name")
	}
	for _, r := range m.Name() {
		if unicode.IsSpace(r) || unicode.IsControl(r) {
			return fmt.Errorf("privelet: mechanism name %q contains whitespace or control characters", m.Name())
		}
	}
	mechMu.Lock()
	defer mechMu.Unlock()
	if _, dup := mechanisms[m.Name()]; dup {
		return fmt.Errorf("privelet: mechanism %q already registered", m.Name())
	}
	mechanisms[m.Name()] = m
	return nil
}

// MechanismByName resolves a registered mechanism. The error for an
// unknown name lists the registered ones, so it is directly usable as a
// CLI or HTTP 400 message.
func MechanismByName(name string) (Mechanism, error) {
	mechMu.RLock()
	m, ok := mechanisms[name]
	mechMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("privelet: unknown mechanism %q (registered: %v)", name, Mechanisms())
	}
	return m, nil
}

// Mechanisms returns the registered mechanism names, sorted.
func Mechanisms() []string {
	mechMu.RLock()
	defer mechMu.RUnlock()
	out := make([]string, 0, len(mechanisms))
	for name := range mechanisms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// mustRegister is RegisterMechanism for the package's own init path,
// where a failure is unreachable short of a duplicated built-in name.
func mustRegister(m Mechanism) {
	if err := RegisterMechanism(m); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister(priveletPlusMech{})
	mustRegister(priveletMech{})
	mustRegister(basicMech{})
	mustRegister(hayMech{})
}

// PublishWith runs the named mechanism on freq and wraps its Result into
// a queryable Release (building the prefix-sum evaluator and applying
// p.Sanitize). It is the primary publish entry point; Publisher.Publish
// and the legacy Publish/PublishBasic wrappers all funnel through it.
func PublishWith(ctx context.Context, mechanism string, freq *Frequency, p Params) (*Release, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mech, err := MechanismByName(mechanism)
	if err != nil {
		return nil, err
	}
	if freq == nil || freq.Schema == nil || freq.M == nil {
		return nil, fmt.Errorf("privelet: nil frequency")
	}
	res, err := mech.Publish(ctx, freq, p)
	if err != nil {
		return nil, err
	}
	// ctx is observed again between the mechanism and the post stages,
	// and once more before the Release is handed out, so a cancelled
	// publish never releases anything — cancellation inside the
	// mechanism is chunk-granular (see core), the post stages observe it
	// at their boundaries.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	noisy := res.Noisy
	if p.Sanitize {
		noisy = postprocess.Sanitize(noisy)
	}
	// The evaluator build runs on the same worker budget as the
	// mechanism (NewEvaluatorWorkers resolves ≤ 0 to all cores) and is
	// bit-identical at any worker count (matrix.PrefixSumExec preserves
	// every scan's order).
	eval := query.NewEvaluatorWorkers(noisy, p.Parallelism)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Release{
		schema:  freq.Schema,
		noisy:   noisy,
		eval:    eval,
		eps:     res.Epsilon,
		rho:     res.Rho,
		lambda:  res.Lambda,
		bound:   res.VarianceBound,
		machine: mech.Name(),
	}, nil
}

// fromCore converts a core engine result to the public Result.
func fromCore(res *core.Result) *Result {
	return &Result{
		Noisy:         res.Noisy,
		Epsilon:       res.Epsilon,
		Rho:           res.Rho,
		Lambda:        res.Lambda,
		VarianceBound: res.VarianceBound,
	}
}

// epsilonValid rejects non-positive budgets with the mechanism named —
// the shared fast check of every built-in's ValidateParams.
func epsilonValid(name string, p Params) error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("privelet: mechanism %q: epsilon must be positive, got %v", name, p.Epsilon)
	}
	return nil
}

// noSA rejects a non-empty Params.SA for mechanisms without a
// transform/SA split.
func noSA(name, why string, p Params) error {
	if len(p.SA) > 0 {
		return fmt.Errorf("privelet: mechanism %q %s and takes no SA", name, why)
	}
	return nil
}

// priveletPlusMech is the paper's Figure-5 Privelet+ mechanism: wavelet
// transform over the non-SA dimensions, per-entry noise over the SA ones.
type priveletPlusMech struct{}

func (priveletPlusMech) Name() string { return "privelet+" }

func (m priveletPlusMech) ValidateParams(schema *Schema, p Params) error {
	if err := epsilonValid(m.Name(), p); err != nil {
		return err
	}
	seen := make(map[string]bool, len(p.SA))
	for _, name := range p.SA {
		if _, err := schema.Index(name); err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("privelet: attribute %q listed twice in SA", name)
		}
		seen[name] = true
	}
	return nil
}

func (m priveletPlusMech) Publish(ctx context.Context, freq *Frequency, p Params) (*Result, error) {
	if err := m.ValidateParams(freq.Schema, p); err != nil {
		return nil, err
	}
	res, err := core.PublishMatrix(ctx, freq.M, freq.Schema, core.Options{
		Epsilon: p.Epsilon, SA: p.SA, Seed: p.Seed, Parallelism: p.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return fromCore(res), nil
}

// priveletMech is plain Privelet (§III): the wavelet transform over every
// dimension, i.e. Privelet+ with SA pinned empty.
type priveletMech struct{}

func (priveletMech) Name() string { return "privelet" }

func (m priveletMech) ValidateParams(_ *Schema, p Params) error {
	if err := epsilonValid(m.Name(), p); err != nil {
		return err
	}
	return noSA(m.Name(), `transforms every attribute (use "privelet+")`, p)
}

func (m priveletMech) Publish(ctx context.Context, freq *Frequency, p Params) (*Result, error) {
	if err := m.ValidateParams(freq.Schema, p); err != nil {
		return nil, err
	}
	res, err := core.PublishMatrix(ctx, freq.M, freq.Schema, core.Options{
		Epsilon: p.Epsilon, Seed: p.Seed, Parallelism: p.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return fromCore(res), nil
}

// basicMech is Dwork et al.'s Basic mechanism (§II-B): independent
// Laplace(2/ε) noise per frequency-matrix entry. Identical output to
// Privelet+ with SA = all attributes, but implemented via the baseline
// package's direct pass (no transform machinery to set up).
type basicMech struct{}

func (basicMech) Name() string { return "basic" }

func (m basicMech) ValidateParams(_ *Schema, p Params) error {
	if err := epsilonValid(m.Name(), p); err != nil {
		return err
	}
	return noSA(m.Name(), "noises every entry directly", p)
}

func (m basicMech) Publish(ctx context.Context, freq *Frequency, p Params) (*Result, error) {
	if err := m.ValidateParams(freq.Schema, p); err != nil {
		return nil, err
	}
	res, err := baseline.Basic(ctx, freq.M, p.Epsilon, p.Seed, p.Parallelism)
	if err != nil {
		return nil, err
	}
	return &Result{
		Noisy:         res.Noisy,
		Epsilon:       res.Epsilon,
		Rho:           1,
		Lambda:        res.Magnitude,
		VarianceBound: privacy.BasicVarianceBound(res.Epsilon, freq.Schema.DomainSize()),
	}, nil
}

// hayMech is Hay et al.'s hierarchical-consistency mechanism — the
// closest independent work the paper compares against (§VIII). It is
// one-dimensional by construction: the schema must have exactly one
// attribute. The released histogram is L2-consistent, so the generic
// prefix-sum evaluator answers every interval query with exactly the
// dyadic-decomposition estimate the mechanism is analyzed under.
type hayMech struct{}

func (hayMech) Name() string { return "hay" }

func (m hayMech) ValidateParams(schema *Schema, p Params) error {
	if err := epsilonValid(m.Name(), p); err != nil {
		return err
	}
	if d := schema.NumAttrs(); d != 1 {
		return fmt.Errorf(`privelet: mechanism "hay" is one-dimensional, schema has %d attributes`, d)
	}
	return noSA(m.Name(), "has no transform", p)
}

func (m hayMech) Publish(ctx context.Context, freq *Frequency, p Params) (*Result, error) {
	if err := m.ValidateParams(freq.Schema, p); err != nil {
		return nil, err
	}
	res, err := hay.Publish(ctx, freq.M.Data(), p.Epsilon, p.Seed)
	if err != nil {
		return nil, err
	}
	noisy, err := matrix.New(freq.Schema.Attr(0).Size)
	if err != nil {
		return nil, err
	}
	copy(noisy.Data(), res.Histogram)
	return &Result{
		Noisy:         noisy,
		Epsilon:       res.Epsilon,
		Rho:           float64(res.Height),
		Lambda:        res.Magnitude,
		VarianceBound: hay.VarianceBound(res.Epsilon, freq.Schema.Attr(0).Size),
	}, nil
}
