package privelet

import (
	"context"
	"fmt"

	"repro/internal/ledger"
)

// ContinualOptions configures a Continual publisher.
type ContinualOptions struct {
	// Tenant is the budget account every republish debits. It must be a
	// valid tenant name (see internal/ledger.ValidateTenant); combined
	// with an epoch number it forms the "<tenant>/<epoch>" release ID
	// the serving layer stores continual releases under.
	Tenant string
	// Ledger enforces sequential composition across the republishes; it
	// is required. Give several Continuals the same Ledger to account
	// several tenants (or several streams of one tenant) together.
	Ledger *Ledger
	// Mechanism names the registry mechanism every republish runs
	// (empty = "privelet+").
	Mechanism string
	// Params configures each republish; Params.Epsilon is the per-epoch
	// budget debit.
	Params Params
	// Window, when positive, keeps only the last Window rows in the
	// frequency matrix (a sliding window over the stream) and
	// automatically attempts a republish every Window rows. 0 means the
	// matrix is cumulative and publishes happen only on Republish calls.
	Window int
}

// Epoch is one continual release: the published window plus the epoch
// number the ledger stamped it with.
type Epoch struct {
	// Tenant is the budget account the epoch was debited from.
	Tenant string
	// Epoch is the tenant's release sequence number (1, 2, …),
	// monotonic across process restarts when the ledger is durable.
	Epoch uint64
	// Release is the published window, queryable like any release.
	Release *Release
}

// ID returns the versioned release identifier, "<tenant>/<epoch>" —
// the ID scheme the daemon's store registers continual releases under.
func (e *Epoch) ID() string { return fmt.Sprintf("%s/%d", e.Tenant, e.Epoch) }

// Continual is the continual-publication mode of the streaming
// Publisher: a tenant feeds rows, and the system republishes the
// current window — on a sliding window of the last Window rows, or on
// demand — with every republish gated by the ledger (sequential
// composition across epochs) and stamped with a monotonically
// increasing epoch number.
//
// The paper's model is one release per dataset (§I: publish once, query
// forever); over an evolving stream each epoch is one such release, and
// the ledger is what keeps the sequence of them inside the tenant's
// total budget. Like Publisher, a Continual is not safe for concurrent
// use; the Ledger it debits is.
type Continual struct {
	opts      ContinualOptions
	pub       *Publisher
	ring      []int // last Window row offsets, circular; nil when Window == 0
	next      int   // ring slot the next row lands in (= the oldest row)
	filled    int   // rows currently in the window
	sinceLast int   // rows since the last republish attempt
}

// NewContinual builds a continual publisher for one tenant's stream.
func NewContinual(schema *Schema, opts ContinualOptions) (*Continual, error) {
	if opts.Ledger == nil {
		return nil, fmt.Errorf("privelet: continual publishing requires a Ledger")
	}
	if err := ledger.ValidateTenant(opts.Tenant); err != nil {
		return nil, err
	}
	if opts.Window < 0 {
		return nil, fmt.Errorf("privelet: negative window %d", opts.Window)
	}
	if opts.Mechanism == "" {
		opts.Mechanism = "privelet+"
	}
	pub, err := NewPublisher(schema)
	if err != nil {
		return nil, err
	}
	c := &Continual{opts: opts, pub: pub}
	if opts.Window > 0 {
		c.ring = make([]int, opts.Window)
	}
	return c, nil
}

// Add folds one row into the window. With a sliding window configured,
// the row that falls out of the window is subtracted in the same step
// (O(1), no rescan), and every Window rows an automatic republish is
// attempted: the returned Epoch is non-nil exactly when this Add
// published one. A refused republish (ErrBudgetExhausted) is returned
// as the error — the row itself is already folded in, so ingest may
// continue and a later Republish (after a Grant or refund) can still
// publish the window. The attempt cadence resets either way, so a
// refusal is reported once per window, not once per row.
func (c *Continual) Add(ctx context.Context, vals ...int) (*Epoch, error) {
	off, err := c.pub.offset(vals)
	if err != nil {
		return nil, err
	}
	data := c.pub.freq.M.Data()
	data[off]++
	c.pub.rows++
	if w := c.opts.Window; w > 0 {
		if c.filled == w {
			data[c.ring[c.next]]-- // the oldest row leaves the window
		} else {
			c.filled++
		}
		c.ring[c.next] = off
		c.next = (c.next + 1) % w
	}
	c.sinceLast++
	if w := c.opts.Window; w > 0 && c.sinceLast >= w {
		return c.Republish(ctx)
	}
	return nil, nil
}

// Republish publishes the current window on demand through
// Publisher.Republish: the ledger is charged before any noise is drawn,
// refunded if the publish fails or ctx is cancelled, and on success the
// epoch counter advances — each call that returns an Epoch spent
// Params.Epsilon of the tenant's budget.
func (c *Continual) Republish(ctx context.Context) (*Epoch, error) {
	c.sinceLast = 0
	rel, err := c.pub.Republish(ctx, c.opts.Mechanism, c.opts.Params, c.opts.Ledger, c.opts.Tenant)
	if err != nil {
		return nil, err
	}
	epoch, err := c.opts.Ledger.NextEpoch(c.opts.Tenant)
	if err != nil {
		return nil, err
	}
	return &Epoch{Tenant: c.opts.Tenant, Epoch: epoch, Release: rel}, nil
}

// Rows returns how many rows have been folded in over the stream's
// lifetime (not just the current window).
func (c *Continual) Rows() int { return c.pub.Rows() }

// WindowRows returns how many rows the current window holds: the
// lifetime count under a cumulative window, at most Window otherwise.
func (c *Continual) WindowRows() int {
	if c.opts.Window > 0 {
		return c.filled
	}
	return c.pub.Rows()
}
