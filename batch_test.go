package privelet_test

import (
	"context"
	"runtime"
	"testing"

	privelet "repro"
	"repro/internal/rng"
	"repro/internal/workload"
)

// TestCountBatchMatchesCount pins the public batch surface to the
// serving determinism contract: Release.CountBatch returns answers
// float64 == to a serial Count loop, in order, at workers 1, 4 and
// GOMAXPROCS.
func TestCountBatchMatchesCount(t *testing.T) {
	occ, err := privelet.ThreeLevelHierarchy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Age", 16),
		privelet.NominalAttr("Occ", occ),
	)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if err := pub.Add((i*7)%16, (i*5)%6); err != nil {
			t.Fatal(err)
		}
	}
	rel, err := pub.Publish(context.Background(), "privelet+", privelet.Params{Epsilon: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewGenerator(schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(2500, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(queries))
	for i, q := range queries {
		if want[i], err = rel.Count(q); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0), 0} {
		got, err := rel.CountBatch(context.Background(), queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: answer %d = %v, Count gave %v", workers, i, got[i], want[i])
			}
		}
	}
}
