package privelet_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	privelet "repro"
)

// histSchema returns a one-dimensional schema every mechanism (including
// "hay") accepts.
func histSchema(t testing.TB, size int) *privelet.Schema {
	t.Helper()
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("Age", size))
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func histFrequency(t testing.TB, size int, rows []int) *privelet.Frequency {
	t.Helper()
	pub, err := privelet.NewPublisher(histSchema(t, size))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := pub.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return pub.Frequency()
}

func TestMechanismRegistryNames(t *testing.T) {
	// The registry is process-global and other tests in this binary
	// register throwaway mechanisms under the "test-" prefix; only the
	// built-ins are pinned here.
	var got []string
	for _, name := range privelet.Mechanisms() {
		if !strings.HasPrefix(name, "test-") {
			got = append(got, name)
		}
	}
	want := []string{"basic", "hay", "privelet", "privelet+"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Mechanisms() = %v, want %v", got, want)
	}
	for _, name := range want {
		m, err := privelet.MechanismByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("mechanism %q reports Name() = %q", name, m.Name())
		}
	}
}

func TestMechanismUnknownName(t *testing.T) {
	_, err := privelet.MechanismByName("fourier")
	if err == nil {
		t.Fatal("lookup of unknown mechanism succeeded")
	}
	// The error doubles as a user-facing message: it must name the
	// offender and list what is available.
	for _, frag := range []string{"fourier", "privelet+", "basic", "hay"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
	if _, err := privelet.PublishWith(context.Background(), "fourier", histFrequency(t, 8, nil), privelet.Params{Epsilon: 1}); err == nil {
		t.Fatal("PublishWith accepted an unknown mechanism")
	}
}

// renamedMech wraps a registered mechanism under a new name, for
// registration tests.
type renamedMech struct {
	privelet.Mechanism
	name string
}

func (m renamedMech) Name() string { return m.name }

func TestRegisterMechanism(t *testing.T) {
	base, err := privelet.MechanismByName("basic")
	if err != nil {
		t.Fatal(err)
	}
	if err := privelet.RegisterMechanism(renamedMech{base, ""}); err == nil {
		t.Fatal("registered a mechanism with an empty name")
	}
	// Names travel through CLI flags, query params (where the server maps
	// spaces back to '+') and the codec header: whitespace must be
	// rejected at registration.
	for _, bad := range []string{"my mech", "tab\tname", "line\nname"} {
		if err := privelet.RegisterMechanism(renamedMech{base, bad}); err == nil {
			t.Fatalf("registered mechanism with whitespace name %q", bad)
		}
	}
	if err := privelet.RegisterMechanism(renamedMech{base, "basic"}); err == nil {
		t.Fatal("registered a duplicate mechanism name")
	}
	// A fresh name registers and resolves; registration is process-wide,
	// so pick one no other test uses.
	if err := privelet.RegisterMechanism(renamedMech{base, "basic-alias-for-test"}); err != nil {
		t.Fatal(err)
	}
	rel, err := privelet.PublishWith(context.Background(), "basic-alias-for-test",
		histFrequency(t, 8, []int{1, 2, 3}), privelet.Params{Epsilon: 1e9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Mechanism() != "basic-alias-for-test" {
		t.Fatalf("release mechanism = %q", rel.Mechanism())
	}
}

// TestAllMechanismsPublishAndRoundTrip publishes the same histogram
// through every registered built-in and round-trips each release through
// the codec: counts answer sanely and the mechanism name survives.
func TestAllMechanismsPublishAndRoundTrip(t *testing.T) {
	rows := []int{0, 1, 1, 2, 3, 3, 3, 7}
	for _, name := range []string{"basic", "hay", "privelet", "privelet+"} {
		freq := histFrequency(t, 8, rows)
		rel, err := privelet.PublishWith(context.Background(), name, freq, privelet.Params{Epsilon: 1e9, Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel.Mechanism() != name {
			t.Fatalf("%s: release mechanism = %q", name, rel.Mechanism())
		}
		q, err := rel.NewQuery().Range("Age", 0, 3).Build()
		if err != nil {
			t.Fatal(err)
		}
		count, err := rel.Count(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(count-7) > 1e-3 {
			t.Fatalf("%s: count = %v, want ~7 (ε huge)", name, count)
		}
		var buf bytes.Buffer
		if err := rel.Save(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		loaded, err := privelet.Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if loaded.Mechanism() != name {
			t.Fatalf("%s: loaded mechanism = %q", name, loaded.Mechanism())
		}
		lcount, err := loaded.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if lcount != count {
			t.Fatalf("%s: loaded count %v != original %v", name, lcount, count)
		}
	}
}

// TestCompatWrappersMatchRegistry pins the compatibility contract: the
// legacy entry points are bit-identical to their registry equivalents.
func TestCompatWrappersMatchRegistry(t *testing.T) {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Age", 13),
		privelet.NominalAttr("Gender", gender),
	)
	if err != nil {
		t.Fatal(err)
	}
	table := privelet.NewTable(schema)
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		row := []int{(i * 7) % 13, i % 2}
		if err := table.Append(row...); err != nil {
			t.Fatal(err)
		}
		if err := pub.Add(row...); err != nil {
			t.Fatal(err)
		}
	}

	old, err := privelet.Publish(table, privelet.Options{Epsilon: 0.5, SA: []string{"Gender"}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	via, err := pub.Publish(context.Background(), "privelet+", privelet.Params{Epsilon: 0.5, SA: []string{"Gender"}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := old.Matrix().MaxAbsDiff(via.Matrix()); d != 0 {
		t.Fatalf("Publish vs registry privelet+ diverged by %v", d)
	}
	if old.Mechanism() != via.Mechanism() || old.VarianceBound() != via.VarianceBound() ||
		old.Lambda() != via.Lambda() || old.Sensitivity() != via.Sensitivity() {
		t.Fatalf("accounting diverged: %v vs %v", old, via)
	}

	oldBasic, err := privelet.PublishBasic(table, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	viaBasic, err := pub.Publish(context.Background(), "basic", privelet.Params{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := oldBasic.Matrix().MaxAbsDiff(viaBasic.Matrix()); d != 0 {
		t.Fatalf("PublishBasic vs registry basic diverged by %v", d)
	}

	// Plain privelet == privelet+ with empty SA.
	plain, err := pub.Publish(context.Background(), "privelet", privelet.Params{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	plus, err := pub.Publish(context.Background(), "privelet+", privelet.Params{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := plain.Matrix().MaxAbsDiff(plus.Matrix()); d != 0 {
		t.Fatalf("privelet vs privelet+ (no SA) diverged by %v", d)
	}
}

func TestMechanismSARejection(t *testing.T) {
	freq := histFrequency(t, 8, []int{1})
	p := privelet.Params{Epsilon: 1, SA: []string{"Age"}, Seed: 1}
	for _, name := range []string{"privelet", "basic", "hay"} {
		if _, err := privelet.PublishWith(context.Background(), name, freq, p); err == nil {
			t.Fatalf("mechanism %q accepted SA", name)
		}
	}
}

// TestValidateParamsPreIngest: every built-in offers the data-free
// pre-ingest check, and it agrees with Publish-time validation.
func TestValidateParamsPreIngest(t *testing.T) {
	schema := histSchema(t, 8)
	for _, c := range []struct {
		mech string
		p    privelet.Params
		ok   bool
	}{
		{"privelet+", privelet.Params{Epsilon: 1, SA: []string{"Age"}}, true},
		{"privelet+", privelet.Params{Epsilon: 1, SA: []string{"ghost"}}, false},
		{"privelet+", privelet.Params{Epsilon: 1, SA: []string{"Age", "Age"}}, false},
		{"privelet+", privelet.Params{Epsilon: 0}, false},
		{"privelet", privelet.Params{Epsilon: 1, SA: []string{"Age"}}, false},
		{"basic", privelet.Params{Epsilon: 1, SA: []string{"Age"}}, false},
		{"basic", privelet.Params{Epsilon: 1}, true},
		{"hay", privelet.Params{Epsilon: 1}, true},
		{"hay", privelet.Params{Epsilon: -1}, false},
	} {
		m, err := privelet.MechanismByName(c.mech)
		if err != nil {
			t.Fatal(err)
		}
		err = privelet.ValidateParams(m, schema, c.p)
		if (err == nil) != c.ok {
			t.Fatalf("%s %+v: err = %v, want ok=%v", c.mech, c.p, err, c.ok)
		}
	}
	// hay on a 2-D schema fails the pre-ingest check too.
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	twoD, err := privelet.NewSchema(privelet.OrdinalAttr("Age", 4), privelet.NominalAttr("Gender", gender))
	if err != nil {
		t.Fatal(err)
	}
	hayMech, err := privelet.MechanismByName("hay")
	if err != nil {
		t.Fatal(err)
	}
	if err := privelet.ValidateParams(hayMech, twoD, privelet.Params{Epsilon: 1}); err == nil {
		t.Fatal("hay pre-ingest check accepted a 2-D schema")
	}
}

func TestHayMechanismOneDimensional(t *testing.T) {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("Age", 4), privelet.NominalAttr("Gender", gender))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(context.Background(), "hay", privelet.Params{Epsilon: 1}); err == nil {
		t.Fatal("hay accepted a 2-D schema")
	}

	// 1-D: the release must agree with the PublishHistogram wrapper.
	rows := []int{0, 0, 1, 2, 2, 2, 3}
	rel, err := privelet.PublishWith(context.Background(), "hay",
		histFrequency(t, 4, rows), privelet.Params{Epsilon: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := privelet.PublishHistogram([]float64{2, 1, 3, 1}, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range hist {
		if got := rel.Matrix().Data()[i]; got != want {
			t.Fatalf("entry %d: mechanism %v != wrapper %v", i, got, want)
		}
	}
	if rel.VarianceBound() <= 0 || math.IsInf(rel.VarianceBound(), 1) {
		t.Fatalf("hay variance bound = %v", rel.VarianceBound())
	}
}

// TestReleaseParallelismInvariance asserts the full public pipeline —
// mechanism, chunked noise injection, and the pooled prefix-sum
// evaluator build — yields bit-identical releases AND bit-identical
// query answers at parallelism 1, 4, and GOMAXPROCS. This is the
// Release-level face of the determinism contract (docs/ARCHITECTURE.md):
// the matrix-level invariance tests would not notice an evaluator whose
// pooled build reassociated sums.
func TestReleaseParallelismInvariance(t *testing.T) {
	// Large enough that the injection pass spans multiple 64Ki chunks
	// and the evaluator build fans out for real.
	const size = 1 << 18
	pub, err := privelet.NewPublisher(histSchema(t, size))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2000; r++ {
		if err := pub.Add((r * 131) % size); err != nil {
			t.Fatal(err)
		}
	}
	freq := pub.Frequency()
	for _, mech := range []string{"basic", "privelet"} {
		var base *privelet.Release
		for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			rel, err := privelet.PublishWith(context.Background(), mech, freq,
				privelet.Params{Epsilon: 1, Seed: 99, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = rel
				continue
			}
			wantM, gotM := base.Matrix().Data(), rel.Matrix().Data()
			for i := range wantM {
				if wantM[i] != gotM[i] {
					t.Fatalf("%s par=%d: released entry %d = %v, serial %v", mech, par, i, gotM[i], wantM[i])
				}
			}
			for _, span := range [][2]int{{0, size - 1}, {100, 5000}, {size / 2, size/2 + 3}} {
				q, err := rel.NewQuery().Range("Age", span[0], span[1]).Build()
				if err != nil {
					t.Fatal(err)
				}
				want, err := base.Count(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := rel.Count(q)
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Fatalf("%s par=%d: Count[%d..%d] = %v, serial %v", mech, par, span[0], span[1], got, want)
				}
			}
		}
	}
}

// TestPublishCancelledBeforeStart: an already-cancelled context fails
// every mechanism without publishing.
func TestPublishCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	freq := histFrequency(t, 64, []int{1, 5, 9})
	for _, name := range []string{"basic", "hay", "privelet", "privelet+"} {
		_, err := privelet.PublishWith(ctx, name, freq, privelet.Params{Epsilon: 1, Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestPublishCancellationMidFlight cancels a many-sub-matrix publish
// while it is running and checks that it aborts with the context error
// and leaks no goroutines (the CI run repeats this under -race).
func TestPublishCancellationMidFlight(t *testing.T) {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Income", 2048),
		privelet.OrdinalAttr("Block", 64),
		privelet.NominalAttr("Gender", gender),
	)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	// 64×2 = 128 sub-matrices (SA = Block, Gender): plenty of
	// cancellation points for the fan-out workers.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pub.Publish(ctx, "privelet+", privelet.Params{
			Epsilon: 1, SA: []string{"Block", "Gender"}, Seed: 3, Parallelism: 4,
		})
		done <- err
	}()
	// Let the publish get going, then pull the plug. If it already
	// finished, the error is nil and the test still verifies no leak.
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("publish error = %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled publish did not return")
	}

	// Publish joins its workers before returning, so the goroutine count
	// must settle back to the baseline (give the runtime a moment).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}

	// The Publisher is still usable after an aborted publish.
	if err := pub.Add(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(context.Background(), "basic", privelet.Params{Epsilon: 1e9, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestFrequencyValidation covers NewFrequency's shape checks.
func TestFrequencyValidation(t *testing.T) {
	schema := histSchema(t, 8)
	other := histSchema(t, 16)
	pub, err := privelet.NewPublisher(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := privelet.NewFrequency(schema, pub.Frequency().M); err == nil {
		t.Fatal("NewFrequency accepted a mis-shaped matrix")
	}
	if _, err := privelet.NewFrequency(nil, nil); err == nil {
		t.Fatal("NewFrequency accepted nils")
	}
	f, err := privelet.NewFrequency(other, pub.Frequency().M)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != other {
		t.Fatal("NewFrequency rebound the schema")
	}
	if _, err := privelet.PublishWith(context.Background(), "basic", nil, privelet.Params{Epsilon: 1}); err == nil {
		t.Fatal("PublishWith accepted a nil frequency")
	}
}
