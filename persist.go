package privelet

import (
	"io"

	"repro/internal/codec"
	"repro/internal/query"
	"repro/internal/store"
)

// Save serializes the release (schema, hierarchies, noisy matrix and
// privacy accounting) to w. A saved release can be shipped to analysts
// and loaded elsewhere — no further privacy cost, since only the
// released data is stored.
//
// The bytes go through store.EncodeRelease, the same durability path the
// priveletd daemon uses for its spill files and /export endpoint, so a
// file written by any of them loads with any of the others.
func (r *Release) Save(w io.Writer) error {
	return store.EncodeRelease(w, &codec.Payload{
		Meta: codec.Meta{
			Mechanism: r.machine,
			Epsilon:   r.eps,
			Rho:       r.rho,
			Lambda:    r.lambda,
			Bound:     r.bound,
		},
		Schema: r.schema,
		Noisy:  r.noisy,
	})
}

// Load reads a release previously written by Save, downloaded from a
// priveletd /export endpoint, or taken straight from a daemon's
// -store-dir spill directory — all three share one format. The query
// evaluator is rebuilt with all cores (the rebuild is bit-identical at
// any worker count, so a loaded release answers exactly as the original
// did).
func Load(rd io.Reader) (*Release, error) {
	p, err := store.DecodeRelease(rd)
	if err != nil {
		return nil, err
	}
	return &Release{
		schema:  p.Schema,
		noisy:   p.Noisy,
		eval:    query.NewEvaluatorWorkers(p.Noisy, 0), // 0 = all cores
		eps:     p.Meta.Epsilon,
		rho:     p.Meta.Rho,
		lambda:  p.Meta.Lambda,
		bound:   p.Meta.Bound,
		machine: p.Meta.Mechanism,
	}, nil
}
