package privelet

import (
	"errors"
	"io"

	"repro/internal/codec"
	"repro/internal/query"
	"repro/internal/store"
)

// Save serializes the release (schema, hierarchies, noisy matrix and
// privacy accounting) to w. A saved release can be shipped to analysts
// and loaded elsewhere — no further privacy cost, since only the
// released data is stored.
//
// The bytes go through store.EncodeRelease, the same durability path the
// priveletd daemon uses for its spill files and /export endpoint, so a
// file written by any of them loads with any of the others. The file
// carries the release's summed-area table (durable format v2), so
// loading it costs no prefix-sum rebuild.
func (r *Release) Save(w io.Writer) error {
	return store.EncodeRelease(w, &codec.Payload{
		Meta: codec.Meta{
			Mechanism: r.machine,
			Epsilon:   r.eps,
			Rho:       r.rho,
			Lambda:    r.lambda,
			Bound:     r.bound,
		},
		Schema: r.schema,
		Noisy:  r.noisy,
		Table:  r.eval.Prefix(),
		Total:  r.eval.Total(),
	})
}

// Load reads a release previously written by Save, downloaded from a
// priveletd /export endpoint, or taken straight from a daemon's
// -store-dir spill directory — all three share one format. A format-v2
// file carries the summed-area table, so the evaluator is adopted with
// zero prefix-sum work; a format-v1 file (or a v2 file whose table
// failed its checksum) rebuilds it with all cores. Both paths answer
// every query bit-identically to the original release — the table build
// is deterministic at any worker count.
func Load(rd io.Reader) (*Release, error) {
	p, err := store.DecodeRelease(rd)
	if err != nil && (p == nil || !errors.Is(err, codec.ErrTable)) {
		return nil, err
	}
	eval := query.NewEvaluatorFromTable(p.Table, p.Total)
	if p.Table == nil {
		eval = query.NewEvaluatorWorkers(p.Noisy, 0) // 0 = all cores
	}
	return &Release{
		schema:  p.Schema,
		noisy:   p.Noisy,
		eval:    eval,
		eps:     p.Meta.Epsilon,
		rho:     p.Meta.Rho,
		lambda:  p.Meta.Lambda,
		bound:   p.Meta.Bound,
		machine: p.Meta.Mechanism,
	}, nil
}
