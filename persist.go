package privelet

import (
	"io"

	"repro/internal/codec"
	"repro/internal/query"
)

// Save serializes the release (schema, hierarchies, noisy matrix and
// privacy accounting) to w in the versioned binary format of
// internal/codec. A saved release can be shipped to analysts and loaded
// elsewhere — no further privacy cost, since only the released data is
// stored.
func (r *Release) Save(w io.Writer) error {
	return codec.Encode(w, &codec.Payload{
		Meta: codec.Meta{
			Mechanism: r.machine,
			Epsilon:   r.eps,
			Rho:       r.rho,
			Lambda:    r.lambda,
			Bound:     r.bound,
		},
		Schema: r.schema,
		Noisy:  r.noisy,
	})
}

// Load reads a release previously written by Save (or downloaded from a
// priveletd /export endpoint).
func Load(rd io.Reader) (*Release, error) {
	p, err := codec.Decode(rd)
	if err != nil {
		return nil, err
	}
	return &Release{
		schema:  p.Schema,
		noisy:   p.Noisy,
		eval:    query.NewEvaluator(p.Noisy),
		eps:     p.Meta.Epsilon,
		rho:     p.Meta.Rho,
		lambda:  p.Meta.Lambda,
		bound:   p.Meta.Bound,
		machine: p.Meta.Mechanism,
	}, nil
}
