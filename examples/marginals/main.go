// Marginals + exact variance: the two extensions beyond the paper's own
// experiments. Publishes a set of marginals under one total budget
// (sequential composition), then uses the exact-variance analyzer to do
// workload-aware SA tuning — the paper's §IX future work.
package main

import (
	"fmt"
	"log"

	privelet "repro"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	spec := dataset.BrazilSpec(dataset.ScaleSmall)
	table, err := dataset.GenerateCensus(spec, 50_000, 23)
	if err != nil {
		log.Fatal(err)
	}
	schema := table.Schema()

	// --- Marginals under a single ε = 1 budget --------------------------
	marginals, err := privelet.PublishMarginals(table, [][]string{
		{"Age"},
		{"Occupation"},
		{"Age", "Gender"},
	}, privelet.MarginalOptions{Epsilon: 1.0, Seed: 9, AutoSA: true, Sanitize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("released marginals (total ε = 1, split evenly):")
	for _, m := range marginals {
		fmt.Printf("  %-20s ε=%.3f cells=%-6d total≈%.0f\n",
			fmt.Sprintf("%v", m.Attrs), m.Epsilon, m.Noisy.Len(), m.Noisy.Total())
	}

	// --- Exact variance & workload-aware SA tuning ----------------------
	gen, err := workload.NewGenerator(schema, 4)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := gen.Queries(1_000, rng.New(31))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nexact noise variance by SA choice (ε=1, mean over %d queries):\n", len(queries))
	for _, sa := range [][]string{
		nil,
		{"Age", "Gender"},
		{"Age", "Gender", "Income"},
		{"Age", "Gender", "Occupation", "Income"},
	} {
		an, err := privelet.NewAnalyzer(schema, 1.0, sa)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := an.Workload(queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SA=%-38s mean %12.1f  p95 %12.1f  max %12.1f\n",
			fmt.Sprintf("%v", sa), stats.Mean, stats.P95, stats.Max)
	}

	best, stats, err := privelet.BestSA(schema, 1.0, queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload-optimal SA (exhaustive over all 2^4 subsets): %v (mean %.1f)\n", best, stats.Mean)

	rule, err := privelet.RecommendSA(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Corollary 1 closed-form rule picks:                    %v\n", rule)
}
