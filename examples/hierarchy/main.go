// Hierarchy: nominal attributes with custom generalization trees — the
// paper's Figure 1 country example. Shows how OLAP roll-up/drill-down
// predicates become contiguous leaf intervals, and how the nominal
// wavelet transform's utility bound beats the ordinalized Haar bound
// (§V-D) for hierarchy-shaped domains.
//
// This example deliberately stays on the legacy Table + Publish(Options)
// wrappers to demonstrate that they keep working unchanged on top of the
// Mechanism/Publisher API (quickstart and census show the current entry
// points).
package main

import (
	"fmt"
	"log"

	privelet "repro"
	"repro/internal/privacy"
)

func main() {
	// The paper's Figure 1: Any → continents → countries.
	root := &privelet.HierarchyNode{Label: "Any", Children: []*privelet.HierarchyNode{
		{Label: "North America", Children: []*privelet.HierarchyNode{
			{Label: "USA"}, {Label: "Canada"}, {Label: "Mexico"},
		}},
		{Label: "South America", Children: []*privelet.HierarchyNode{
			{Label: "Brazil"}, {Label: "Argentina"}, {Label: "Chile"},
		}},
		{Label: "Europe", Children: []*privelet.HierarchyNode{
			{Label: "France"}, {Label: "Germany"}, {Label: "Spain"},
		}},
	}}
	countries, err := privelet.BuildHierarchy(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hierarchy (leaf intervals in the imposed order):")
	fmt.Println(countries)

	schema, err := privelet.NewSchema(
		privelet.NominalAttr("Country", countries),
		privelet.OrdinalAttr("Year", 16),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A small shipment log: (country leaf, year).
	table := privelet.NewTable(schema)
	data := [][2]int{
		{0, 3}, {0, 4}, {1, 3}, {2, 7}, {3, 9}, {3, 10}, {3, 11},
		{4, 2}, {5, 5}, {6, 8}, {7, 8}, {7, 9}, {8, 1}, {0, 12},
	}
	for _, d := range data {
		if err := table.Append(d[0], d[1]); err != nil {
			log.Fatal(err)
		}
	}

	release, err := privelet.Publish(table, privelet.Options{Epsilon: 2.0, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Roll-up: whole continents; drill-down: single countries. Both are
	// single contiguous ranges after normalization.
	for _, label := range []string{"North America", "South America", "Europe", "Brazil", "USA"} {
		q, err := release.NewQuery().Node("Country", label).Build()
		if err != nil {
			log.Fatal(err)
		}
		count, err := release.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shipments to %-14s ≈ %6.1f (coverage %.2f)\n", label, count, q.Coverage())
	}

	// §V-D in numbers for this hierarchy (9 leaves, height 3) at ε=1:
	hwt := privacy.HaarVarianceBound(1.0, countries.LeafCount())
	nom := privacy.NominalVarianceBound(1.0, countries.Height())
	fmt.Printf("\nnoise variance bounds at ε=1 for the Country attribute alone:\n")
	fmt.Printf("  Haar on imposed order: %8.1f (Equation 4)\n", hwt)
	fmt.Printf("  nominal transform:     %8.1f (Equation 6) → %.1f× lower\n", nom, hwt/nom)
}
