// Quickstart: publish the paper's Table I medical-records example under
// ε-differential privacy and answer the motivating query ("how many
// diabetes patients are under 50?") from the noisy release.
package main

import (
	"fmt"
	"log"

	privelet "repro"
)

func main() {
	// Schema: ordinal Age (5 groups: <30, 30-39, 40-49, 50-59, >=60) and
	// nominal HasDiabetes (flat hierarchy: Yes, No).
	diabetes, err := privelet.FlatHierarchy(2)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Age", 5),
		privelet.NominalAttr("HasDiabetes", diabetes),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The eight tuples of Table I (0 = Yes, 1 = No).
	table := privelet.NewTable(schema)
	rows := [][2]int{
		{0, 1}, {0, 1}, {1, 1}, {2, 1}, {2, 0}, {2, 1}, {3, 1}, {4, 0},
	}
	for _, r := range rows {
		if err := table.Append(r[0], r[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Publish once; query forever. SA = {HasDiabetes} keeps the
	// two-value attribute out of the wavelet transform (Corollary 1).
	release, err := privelet.Publish(table, privelet.Options{
		Epsilon:  1.0,
		SA:       []string{"HasDiabetes"},
		Seed:     42,
		Sanitize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("release:", release)

	// The paper's intro query: diabetes patients with age under 50.
	q, err := release.NewQuery().
		Range("Age", 0, 2).
		Leaf("HasDiabetes", 0).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := release.Count(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diabetes patients under 50: noisy=%g (true answer is 1)\n", noisy)

	// Worst-case noise variance for any range-count query against this
	// release, per Corollary 1.
	fmt.Printf("analytic noise variance bound: %.1f\n", release.VarianceBound())
}
