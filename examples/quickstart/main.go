// Quickstart: publish the paper's Table I medical-records example under
// ε-differential privacy and answer the motivating query ("how many
// diabetes patients are under 50?") from the noisy release.
//
// This example uses the current API surface: a streaming Publisher that
// folds rows straight into the frequency matrix (no table buffering) and
// mechanism selection by registry name. The hierarchy example shows the
// legacy Publish/Options wrappers, which remain supported.
package main

import (
	"context"
	"fmt"
	"log"

	privelet "repro"
)

func main() {
	// Schema: ordinal Age (5 groups: <30, 30-39, 40-49, 50-59, >=60) and
	// nominal HasDiabetes (flat hierarchy: Yes, No).
	diabetes, err := privelet.FlatHierarchy(2)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Age", 5),
		privelet.NominalAttr("HasDiabetes", diabetes),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the eight tuples of Table I (0 = Yes, 1 = No) into a
	// Publisher. Each Add folds the row into the frequency matrix
	// immediately — memory stays O(domain) however many rows arrive, so
	// the same loop ingests eight tuples or eight billion.
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		log.Fatal(err)
	}
	rows := [][2]int{
		{0, 1}, {0, 1}, {1, 1}, {2, 1}, {2, 0}, {2, 1}, {3, 1}, {4, 0},
	}
	for _, r := range rows {
		if err := pub.Add(r[0], r[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Publish once; query forever. The mechanism is chosen by name from
	// the registry (privelet.Mechanisms() lists what is available) and
	// SA = {HasDiabetes} keeps the two-value attribute out of the
	// wavelet transform (Corollary 1).
	release, err := pub.Publish(context.Background(), "privelet+", privelet.Params{
		Epsilon:  1.0,
		SA:       []string{"HasDiabetes"},
		Seed:     42,
		Sanitize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mechanisms:", privelet.Mechanisms())
	fmt.Println("release:", release)

	// The paper's intro query: diabetes patients with age under 50.
	q, err := release.NewQuery().
		Range("Age", 0, 2).
		Leaf("HasDiabetes", 0).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := release.Count(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diabetes patients under 50: noisy=%g (true answer is 1)\n", noisy)

	// Worst-case noise variance for any range-count query against this
	// release, per Corollary 1.
	fmt.Printf("analytic noise variance bound: %.1f\n", release.VarianceBound())
}
