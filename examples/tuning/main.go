// Tuning: choosing Privelet+'s SA set. Corollary 1 says an attribute
// belongs in SA when |A| ≤ P(A)²·H(A) — per-entry noise then beats
// transform-domain noise. This example sweeps every SA subset of a
// census schema, prints the analytic bound for each, and verifies the
// recommendation empirically at one ε.
package main

import (
	"fmt"
	"log"
	"os"

	privelet "repro"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	spec := dataset.BrazilSpec(dataset.ScaleSmall)
	schema, err := spec.Schema()
	if err != nil {
		log.Fatal(err)
	}

	// Analytic sweep over all 2^4 SA subsets.
	if err := experiment.SummarizeBounds(os.Stdout, schema, 1.0); err != nil {
		log.Fatal(err)
	}

	// The closed-form rule.
	recommended, err := privelet.RecommendSA(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RecommendSA (|A| ≤ P²H rule): %v\n\n", recommended)

	// Empirical check: mean square error over a random workload for three
	// SA choices.
	table, err := dataset.GenerateCensus(spec, 50_000, 11)
	if err != nil {
		log.Fatal(err)
	}
	truthM, err := table.FrequencyMatrix()
	if err != nil {
		log.Fatal(err)
	}
	truth := query.NewEvaluator(truthM)
	gen, err := workload.NewGenerator(schema, 4)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := gen.Queries(2_000, rng.New(13))
	if err != nil {
		log.Fatal(err)
	}

	choices := []struct {
		label string
		sa    []string
	}{
		{"SA = ∅ (plain Privelet)", nil},
		{"SA = recommended", recommended},
		{"SA = everything (Basic)", []string{"Age", "Gender", "Occupation", "Income"}},
	}
	fmt.Printf("%-28s %16s\n", "choice", "mean sq error")
	for _, c := range choices {
		rel, err := privelet.Publish(table, privelet.Options{Epsilon: 1.0, SA: c.sa, Seed: 17})
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, q := range queries {
			act, err := truth.Count(q)
			if err != nil {
				log.Fatal(err)
			}
			got, err := rel.Count(q)
			if err != nil {
				log.Fatal(err)
			}
			total += workload.SquareError(got, act)
		}
		fmt.Printf("%-28s %16.1f\n", c.label, total/float64(len(queries)))
	}
}
