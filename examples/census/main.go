// Census: the paper's headline experiment in miniature. Generates a
// Brazil-like census table, publishes it through two registered
// mechanisms — "basic" (Dwork et al.) and "privelet+" — selected by
// name, then compares the two releases' accuracy on OLAP-style
// range-count queries of growing size.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	privelet "repro"
	"repro/internal/dataset"
	"repro/internal/query"
)

func main() {
	const (
		n       = 100_000
		epsilon = 1.0
		seed    = 7
	)
	spec := dataset.BrazilSpec(dataset.ScaleSmall)
	table, err := dataset.GenerateCensus(spec, n, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("census table: %d tuples, domain size %d\n\n", table.Len(), table.Schema().DomainSize())

	truthM, err := table.FrequencyMatrix()
	if err != nil {
		log.Fatal(err)
	}
	truth := query.NewEvaluator(truthM)

	// One frequency, two mechanisms: the registry makes head-to-head
	// comparisons a name swap rather than an API change.
	freq, err := privelet.TableFrequency(table)
	if err != nil {
		log.Fatal(err)
	}
	basic, err := privelet.PublishWith(context.Background(), "basic", freq,
		privelet.Params{Epsilon: epsilon, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	plus, err := privelet.PublishWith(context.Background(), "privelet+", freq, privelet.Params{
		Epsilon: epsilon,
		SA:      []string{"Age", "Gender"}, // the paper's pick
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Queries of growing coverage: from a thin slice to a quarter of the
	// cube. Each constrains Age and Income ranges plus an Occupation
	// subtree.
	type probe struct {
		label           string
		ageHi, incomeHi int
		occGroup        string
	}
	probes := []probe{
		{"tiny  (one age bucket)", 0, 7, "g0"},
		{"small (youth slice)", 7, 15, "g1"},
		{"medium (half ages)", 31, 31, "g2"},
		{"large (most of cube)", 55, 55, "g3"},
	}

	fmt.Printf("%-26s %10s %12s %12s %12s %12s\n",
		"query", "true", "Basic", "Privelet+", "err(Basic)", "err(Priv+)")
	for _, p := range probes {
		q, err := query.NewBuilder(table.Schema()).
			Range("Age", 0, p.ageHi).
			Range("Income", 0, p.incomeHi).
			Node("Occupation", p.occGroup).
			Build()
		if err != nil {
			log.Fatal(err)
		}
		act, err := truth.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		bv, err := basic.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		pv, err := plus.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %10.0f %12.1f %12.1f %12.1f %12.1f\n",
			p.label, act, bv, pv, math.Abs(bv-act), math.Abs(pv-act))
	}

	fmt.Printf("\nanalytic worst-case noise variance:\n")
	fmt.Printf("  Basic:     %12.4g\n", basic.VarianceBound())
	fmt.Printf("  Privelet+: %12.4g (Corollary 1)\n", plus.VarianceBound())
}
